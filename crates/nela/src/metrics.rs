//! Workload metrics matching the paper's §VI measurements.

use crate::engine::{BoundingAlgo, CloakingEngine, CloakingResult, ClusteringAlgo};
use crate::params::Params;
use crate::system::System;
use nela_geo::UserId;
use serde::Serialize;

/// Expected service-request transfer cost over a cloaked region of the
/// given `area`, in bounding-message units: the region returns about
/// `area · n_users` POIs, each `Cr` messages large (paper §VI: "the
/// communication cost is (approximately) proportional to \[the\] area of the
/// bound").
pub fn service_request_cost(area: f64, params: &Params) -> f64 {
    params.cr * params.n_users as f64 * area
}

/// Aggregated metrics over a workload of cloaking requests — the quantities
/// plotted in Figs. 9–13, all averaged over the total number of requests
/// (including zero-cost reuses, as the paper does).
#[derive(Debug, Clone, Default, Serialize)]
pub struct WorkloadStats {
    /// Requests served (including reuses).
    pub served: usize,
    /// Requests that failed (host could not reach k users).
    pub failed: usize,
    /// Requests answered entirely from the registry.
    pub reused: usize,
    /// Average phase-1 messages per request.
    pub avg_clustering_messages: f64,
    /// Average cloaked-region area per request.
    pub avg_cloaked_area: f64,
    /// Average phase-2 verification messages per request.
    pub avg_bounding_messages: f64,
    /// Average service-request transfer cost per request.
    pub avg_request_cost: f64,
    /// Average phase-2 CPU time per request, in milliseconds.
    pub avg_bounding_cpu_ms: f64,
    /// Average cluster size per served request.
    pub avg_cluster_size: f64,
}

/// Accumulator for [`WorkloadStats`].
#[derive(Debug, Default, Clone)]
pub struct StatsCollector {
    served: usize,
    failed: usize,
    reused: usize,
    clustering_messages: f64,
    area: f64,
    bounding_messages: f64,
    request_cost: f64,
    cpu_ms: f64,
    cluster_size: f64,
}

impl StatsCollector {
    /// A fresh collector.
    pub fn new() -> Self {
        StatsCollector::default()
    }

    /// Records one successful request.
    pub fn push(&mut self, r: &CloakingResult, params: &Params) {
        self.served += 1;
        self.reused += usize::from(r.reused);
        self.clustering_messages += r.clustering_messages as f64;
        self.area += r.region.area();
        self.bounding_messages += r.bounding_messages as f64;
        self.request_cost += service_request_cost(r.region.area(), params);
        self.cpu_ms += r.bounding_cpu.as_secs_f64() * 1e3;
        self.cluster_size += r.cluster_size as f64;
    }

    /// Records one failed request.
    pub fn push_failure(&mut self) {
        self.failed += 1;
    }

    /// Finalizes the averages (over served requests).
    pub fn finish(self) -> WorkloadStats {
        let n = self.served.max(1) as f64;
        WorkloadStats {
            served: self.served,
            failed: self.failed,
            reused: self.reused,
            avg_clustering_messages: self.clustering_messages / n,
            avg_cloaked_area: self.area / n,
            avg_bounding_messages: self.bounding_messages / n,
            avg_request_cost: self.request_cost / n,
            avg_bounding_cpu_ms: self.cpu_ms / n,
            avg_cluster_size: self.cluster_size / n,
        }
    }
}

/// Runs a full request workload and aggregates the paper's metrics.
pub fn run_workload(
    system: &System,
    clustering: ClusteringAlgo,
    bounding: BoundingAlgo,
    hosts: &[UserId],
) -> WorkloadStats {
    run_workload_threads(system, clustering, bounding, hosts, 1)
}

/// [`run_workload`] over a batched engine: with `threads > 1` the requests
/// are served concurrently through [`CloakingEngine::request_many`]. The
/// aggregate counters (served / failed / reuse and message totals) match the
/// serial run whenever the requests are independent; per-request attribution
/// of a reuse may differ, since whichever racing host registers the cluster
/// first pays its clustering messages.
pub fn run_workload_threads(
    system: &System,
    clustering: ClusteringAlgo,
    bounding: BoundingAlgo,
    hosts: &[UserId],
    threads: usize,
) -> WorkloadStats {
    let mut engine = CloakingEngine::new(system, clustering, bounding);
    let mut stats = StatsCollector::new();
    for outcome in engine.request_many(hosts, threads) {
        match outcome {
            Ok(r) => stats.push(&r, &system.params),
            Err(_) => stats.push_failure(),
        }
    }
    stats.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nela_cluster::knn::TieBreak;

    fn small_system() -> System {
        System::build(&Params {
            k: 5,
            ..Params::scaled(2_000)
        })
    }

    #[test]
    fn request_cost_scales_with_area() {
        let p = Params::table1();
        let c1 = service_request_cost(1e-4, &p);
        let c2 = service_request_cost(2e-4, &p);
        assert!((c2 / c1 - 2.0).abs() < 1e-12);
        // Table I numbers: 1e-4 · 104770 · 1000 ≈ 10477.
        assert!((c1 - 10_477.0).abs() < 1.0);
    }

    #[test]
    fn workload_stats_are_populated() {
        let s = small_system();
        let hosts = s.host_sequence(40, 9);
        let stats = run_workload(
            &s,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Optimal,
            &hosts,
        );
        assert!(stats.served + stats.failed == 40);
        assert!(stats.avg_cloaked_area > 0.0);
        assert!(stats.avg_cluster_size >= 5.0);
    }

    #[test]
    fn tconn_stays_flat_while_knn_degrades_under_sustained_load() {
        // The mechanism behind Figs. 9(b)/11(b)/12(b): as cloaking requests
        // accumulate, kNN's regions grow (free users must be found farther
        // away) while t-Conn's stay flat (cluster-isolation), so under a
        // sustained workload t-Conn ends up with the tighter regions.
        let s = small_system();
        let light = s.host_sequence(40, 11);
        let heavy = s.host_sequence(340, 11); // ~85% of users consumed by kNN groups
        let run =
            |algo, hosts: &[nela_geo::UserId]| run_workload(&s, algo, BoundingAlgo::Optimal, hosts);
        let knn_light = run(ClusteringAlgo::Knn(TieBreak::Id), &light);
        let knn_heavy = run(ClusteringAlgo::Knn(TieBreak::Id), &heavy);
        let tconn_light = run(ClusteringAlgo::TConnDistributed, &light);
        let tconn_heavy = run(ClusteringAlgo::TConnDistributed, &heavy);
        assert!(
            knn_heavy.avg_cloaked_area > 1.3 * knn_light.avg_cloaked_area,
            "kNN should degrade: light {} heavy {}",
            knn_light.avg_cloaked_area,
            knn_heavy.avg_cloaked_area
        );
        assert!(
            tconn_heavy.avg_cloaked_area < 1.3 * tconn_light.avg_cloaked_area,
            "t-Conn should stay flat: light {} heavy {}",
            tconn_light.avg_cloaked_area,
            tconn_heavy.avg_cloaked_area
        );
        assert!(
            tconn_heavy.avg_cloaked_area < knn_heavy.avg_cloaked_area,
            "under sustained load t-Conn must win: {} vs {}",
            tconn_heavy.avg_cloaked_area,
            knn_heavy.avg_cloaked_area
        );
    }

    #[test]
    fn reuse_rate_grows_with_workload_size() {
        let s = small_system();
        let short = run_workload(
            &s,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Optimal,
            &s.host_sequence(20, 13),
        );
        let long = run_workload(
            &s,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Optimal,
            &s.host_sequence(400, 13),
        );
        let rate = |st: &WorkloadStats| st.reused as f64 / st.served.max(1) as f64;
        assert!(rate(&long) > rate(&short));
    }
}
