//! Workload metrics matching the paper's §VI measurements.

use crate::engine::{BoundingAlgo, CloakingEngine, CloakingResult, ClusteringAlgo};
use crate::params::Params;
use crate::system::System;
use nela_geo::UserId;
use serde::Serialize;

/// Expected service-request transfer cost over a cloaked region of the
/// given `area`, in bounding-message units: the region returns about
/// `area · n_users` POIs, each `Cr` messages large (paper §VI: "the
/// communication cost is (approximately) proportional to \[the\] area of the
/// bound").
pub fn service_request_cost(area: f64, params: &Params) -> f64 {
    params.cr * params.n_users as f64 * area
}

/// Aggregated metrics over a workload of cloaking requests — the quantities
/// plotted in Figs. 9–13, all averaged over the total number of requests
/// (including zero-cost reuses, as the paper does).
///
/// Averages are `None` when no request was served: an all-failed workload
/// must not report fabricated `0.0` costs, it must report its failure count.
/// The message *totals* are exact and defined for every workload, so they
/// are the quantities to compare across runs (serial vs. parallel).
#[derive(Debug, Clone, Default, Serialize)]
pub struct WorkloadStats {
    /// Requests served (including reuses).
    pub served: usize,
    /// Requests that failed (host could not reach k users).
    pub failed: usize,
    /// Fraction of the workload that failed: `failed / (served + failed)`,
    /// `0.0` for an empty workload.
    pub failure_rate: f64,
    /// Requests answered entirely from the registry.
    pub reused: usize,
    /// Total phase-1 messages across all served requests.
    pub clustering_messages_total: u64,
    /// Total phase-2 verification messages across all served requests.
    pub bounding_messages_total: u64,
    /// Average phase-1 messages per served request.
    pub avg_clustering_messages: Option<f64>,
    /// Average cloaked-region area per served request.
    pub avg_cloaked_area: Option<f64>,
    /// Average phase-2 verification messages per served request.
    pub avg_bounding_messages: Option<f64>,
    /// Average service-request transfer cost per served request.
    pub avg_request_cost: Option<f64>,
    /// Average phase-2 CPU time per served request, in milliseconds.
    pub avg_bounding_cpu_ms: Option<f64>,
    /// Average cluster size per served request.
    pub avg_cluster_size: Option<f64>,
}

/// Accumulator for [`WorkloadStats`].
#[derive(Debug, Default, Clone)]
pub struct StatsCollector {
    served: usize,
    failed: usize,
    reused: usize,
    clustering_messages: u64,
    area: f64,
    bounding_messages: u64,
    request_cost: f64,
    cpu_ms: f64,
    cluster_size: f64,
}

impl StatsCollector {
    /// A fresh collector.
    pub fn new() -> Self {
        StatsCollector::default()
    }

    /// Records one successful request.
    pub fn push(&mut self, r: &CloakingResult, params: &Params) {
        self.served += 1;
        self.reused += usize::from(r.reused);
        self.clustering_messages += r.clustering_messages;
        self.area += r.region.area();
        self.bounding_messages += r.bounding_messages;
        self.request_cost += service_request_cost(r.region.area(), params);
        self.cpu_ms += r.bounding_cpu.as_secs_f64() * 1e3;
        self.cluster_size += r.cluster_size as f64;
    }

    /// Records one failed request.
    pub fn push_failure(&mut self) {
        self.failed += 1;
    }

    /// Finalizes the averages (over served requests). With zero served
    /// requests every average is `None` — there is nothing to average, and
    /// reporting `0.0` would make a fully failed run look free.
    pub fn finish(self) -> WorkloadStats {
        let avg = |sum: f64| (self.served > 0).then(|| sum / self.served as f64);
        let total = self.served + self.failed;
        WorkloadStats {
            served: self.served,
            failed: self.failed,
            failure_rate: if total > 0 {
                self.failed as f64 / total as f64
            } else {
                0.0
            },
            reused: self.reused,
            clustering_messages_total: self.clustering_messages,
            bounding_messages_total: self.bounding_messages,
            avg_clustering_messages: avg(self.clustering_messages as f64),
            avg_cloaked_area: avg(self.area),
            avg_bounding_messages: avg(self.bounding_messages as f64),
            avg_request_cost: avg(self.request_cost),
            avg_bounding_cpu_ms: avg(self.cpu_ms),
            avg_cluster_size: avg(self.cluster_size),
        }
    }
}

/// Runs a full request workload and aggregates the paper's metrics.
pub fn run_workload(
    system: &System,
    clustering: ClusteringAlgo,
    bounding: BoundingAlgo,
    hosts: &[UserId],
) -> WorkloadStats {
    run_workload_threads(system, clustering, bounding, hosts, 1)
}

/// [`run_workload`] over a batched engine: with `threads > 1` the requests
/// are served concurrently through [`CloakingEngine::request_many`]. The
/// aggregate counters (served / failed / reuse and message totals) match the
/// serial run whenever the requests are independent; per-request attribution
/// of a reuse may differ, since whichever racing host registers the cluster
/// first pays its clustering messages.
pub fn run_workload_threads(
    system: &System,
    clustering: ClusteringAlgo,
    bounding: BoundingAlgo,
    hosts: &[UserId],
    threads: usize,
) -> WorkloadStats {
    let mut engine = CloakingEngine::new(system, clustering, bounding);
    let mut stats = StatsCollector::new();
    for outcome in engine.request_many(hosts, threads) {
        match outcome {
            Ok(r) => stats.push(&r, &system.params),
            Err(_) => stats.push_failure(),
        }
    }
    stats.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nela_cluster::knn::TieBreak;

    fn small_system() -> System {
        System::build(&Params {
            k: 5,
            ..Params::scaled(2_000)
        })
    }

    #[test]
    fn request_cost_scales_with_area() {
        let p = Params::table1();
        let c1 = service_request_cost(1e-4, &p);
        let c2 = service_request_cost(2e-4, &p);
        assert!((c2 / c1 - 2.0).abs() < 1e-12);
        // Table I numbers: 1e-4 · 104770 · 1000 ≈ 10477.
        assert!((c1 - 10_477.0).abs() < 1.0);
    }

    #[test]
    fn workload_stats_are_populated() {
        let s = small_system();
        let hosts = s.host_sequence(40, 9);
        let stats = run_workload(
            &s,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Optimal,
            &hosts,
        );
        assert!(stats.served + stats.failed == 40);
        assert!(stats.avg_cloaked_area.unwrap() > 0.0);
        assert!(stats.avg_cluster_size.unwrap() >= 5.0);
        assert!(stats.clustering_messages_total > 0);
    }

    #[test]
    fn all_failed_workload_reports_failures_not_zero_averages() {
        // Ask for a cluster larger than the whole population: every request
        // fails, so no average is defined — the stats must say so instead of
        // fabricating 0.0 costs.
        let s = System::build(&Params {
            k: 5_000,
            ..Params::scaled(2_000)
        });
        let hosts = s.host_sequence(10, 7);
        let stats = run_workload(
            &s,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Optimal,
            &hosts,
        );
        assert_eq!(stats.served, 0);
        assert_eq!(stats.failed, 10);
        assert_eq!(stats.failure_rate, 1.0);
        assert!(stats.avg_cloaked_area.is_none());
        assert!(stats.avg_request_cost.is_none());
        assert!(stats.avg_cluster_size.is_none());
        let json = serde_json::to_string(&stats).unwrap();
        assert!(json.contains("\"failed\": 10") || json.contains("\"failed\":10"));
        assert!(
            json.contains("null"),
            "averages must serialize as null: {json}"
        );
        assert!(
            !json.contains("\"avg_cloaked_area\": 0") && !json.contains("\"avg_cloaked_area\":0"),
            "no fabricated zero average: {json}"
        );
    }

    #[test]
    fn tconn_stays_flat_while_knn_degrades_under_sustained_load() {
        // The mechanism behind Figs. 9(b)/11(b)/12(b): as cloaking requests
        // accumulate, kNN's regions grow (free users must be found farther
        // away) while t-Conn's stay flat (cluster-isolation), so under a
        // sustained workload t-Conn ends up with the tighter regions.
        let s = small_system();
        let light = s.host_sequence(40, 11);
        let heavy = s.host_sequence(340, 11); // ~85% of users consumed by kNN groups
        let run =
            |algo, hosts: &[nela_geo::UserId]| run_workload(&s, algo, BoundingAlgo::Optimal, hosts);
        let area = |st: &WorkloadStats| st.avg_cloaked_area.unwrap();
        let knn_light = area(&run(ClusteringAlgo::Knn(TieBreak::Id), &light));
        let knn_heavy = area(&run(ClusteringAlgo::Knn(TieBreak::Id), &heavy));
        let tconn_light = area(&run(ClusteringAlgo::TConnDistributed, &light));
        let tconn_heavy = area(&run(ClusteringAlgo::TConnDistributed, &heavy));
        assert!(
            knn_heavy > 1.3 * knn_light,
            "kNN should degrade: light {knn_light} heavy {knn_heavy}"
        );
        assert!(
            tconn_heavy < 1.3 * tconn_light,
            "t-Conn should stay flat: light {tconn_light} heavy {tconn_heavy}"
        );
        assert!(
            tconn_heavy < knn_heavy,
            "under sustained load t-Conn must win: {tconn_heavy} vs {knn_heavy}"
        );
    }

    #[test]
    fn reuse_rate_grows_with_workload_size() {
        let s = small_system();
        let short = run_workload(
            &s,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Optimal,
            &s.host_sequence(20, 13),
        );
        let long = run_workload(
            &s,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Optimal,
            &s.host_sequence(400, 13),
        );
        let rate = |st: &WorkloadStats| st.reused as f64 / st.served.max(1) as f64;
        assert!(rate(&long) > rate(&short));
    }
}
