//! The deployed system: population, spatial index, and proximity graph.

use crate::params::Params;
use nela_geo::{DatasetSpec, GridIndex, Point, UserId};
use nela_wpg::{InverseDistanceRss, Wpg, WpgBuilder};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// An instantiated NELA deployment: the user population (ground truth,
/// known only to each user individually), the grid index used to *build*
/// the proximity graph (standing in for the radio medium), and the WPG
/// the protocols actually operate on.
#[derive(Debug, Clone)]
pub struct System {
    /// Parameters this system was built from.
    pub params: Params,
    /// Ground-truth positions (index = user id). The protocols never read
    /// these except through RSS ranks and yes/no bound verifications.
    pub points: Vec<Point>,
    /// Spatial index over the population (used for WPG construction and for
    /// k-anonymity audits).
    pub grid: GridIndex,
    /// The weighted proximity graph.
    pub wpg: Wpg,
}

impl System {
    /// Generates the population and builds the WPG.
    pub fn build(params: &Params) -> System {
        let spec = DatasetSpec {
            n: params.n_users,
            seed: params.seed,
            distribution: params.distribution.clone(),
        };
        let threads = params.threads.max(1);
        let points = spec.generate();
        let grid = GridIndex::build_threads(&points, params.delta, threads);
        let wpg = WpgBuilder::new(params.delta, params.max_peers, InverseDistanceRss)
            .build_with_index_threads(&points, &grid, threads);
        System {
            params: params.clone(),
            points,
            grid,
            wpg,
        }
    }

    /// Assembles a system from pre-built parts. Used by the continuous
    /// mobility pipeline, which maintains positions, grid, and WPG
    /// incrementally across ticks instead of regenerating them.
    pub fn with_parts(params: Params, points: Vec<Point>, grid: GridIndex, wpg: Wpg) -> System {
        assert_eq!(points.len(), grid.len(), "grid does not match points");
        assert_eq!(points.len(), wpg.n(), "wpg does not match points");
        System {
            params,
            points,
            grid,
            wpg,
        }
    }

    /// A reproducible sequence of `s` distinct host users (the paper's
    /// workload: S users out of the population request cloaking).
    pub fn host_sequence(&self, s: usize, seed: u64) -> Vec<UserId> {
        assert!(s <= self.points.len(), "more hosts than users");
        let mut ids: Vec<UserId> = (0..self.points.len() as UserId).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(self.params.seed ^ seed);
        ids.shuffle(&mut rng);
        ids.truncate(s);
        ids
    }

    /// Average vertex degree of the WPG (the x-axis of Fig. 9).
    pub fn avg_degree(&self) -> f64 {
        self.wpg.avg_degree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> System {
        System::build(&Params::scaled(2_000))
    }

    #[test]
    fn build_produces_consistent_sizes() {
        let s = small();
        assert_eq!(s.points.len(), 2_000);
        assert_eq!(s.wpg.n(), 2_000);
        assert_eq!(s.grid.len(), 2_000);
    }

    #[test]
    fn degree_bounded_by_max_peers() {
        let s = small();
        for u in 0..s.wpg.n() as UserId {
            assert!(s.wpg.degree(u) <= s.params.max_peers);
        }
    }

    #[test]
    fn host_sequence_is_distinct_and_reproducible() {
        let s = small();
        let a = s.host_sequence(100, 5);
        let b = s.host_sequence(100, 5);
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 100);
        let c = s.host_sequence(100, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn rebuild_is_deterministic() {
        let p = Params::scaled(1_000);
        let a = System::build(&p);
        let b = System::build(&p);
        assert_eq!(a.points, b.points);
        assert_eq!(a.wpg.m(), b.wpg.m());
    }

    #[test]
    fn threaded_build_matches_serial() {
        let serial = System::build(&Params::scaled(1_500));
        for threads in [2, 4, 8] {
            let p = Params {
                threads,
                ..Params::scaled(1_500)
            };
            let par = System::build(&p);
            assert_eq!(serial.points, par.points);
            assert_eq!(
                serial.wpg.edges().collect::<Vec<_>>(),
                par.wpg.edges().collect::<Vec<_>>(),
                "threads = {threads}"
            );
        }
    }
}
