//! Adversary models: what an attacker who intercepts service requests can
//! (and cannot) learn.
//!
//! The paper's threat model (§III): an adversary intercepting a request
//! sees the cloaked region and "cannot distinguish its owner from any of the
//! other k − 1 users" sharing it. This module makes the guarantee
//! measurable against ground truth:
//!
//! - [`anonymity_of`] — how many users actually fall inside a region and
//!   the corresponding identification entropy,
//! - [`center_attack`] — the classic localization heuristic (guess the
//!   region's center) and its error,
//! - [`intersection_attack`] — a longitudinal attack over several regions
//!   attributed to the same user: intersect them and count survivors.
//!   Reciprocity defeats it (a member's region never changes, so the
//!   intersection is the region itself); the kNN baseline, which forms a
//!   fresh group per request, is vulnerable — the paper's rationale for the
//!   reciprocity property, demonstrated.

use crate::engine::CloakingResult;
use crate::system::System;
use nela_geo::{Rect, UserId};
use serde::Serialize;

/// What a single intercepted region reveals about the requester's identity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AnonymityReport {
    /// Users of the population inside the region — the adversary's candidate
    /// set (the true requester is among them).
    pub candidates: usize,
    /// Identification entropy in bits (`log₂ candidates`): the adversary's
    /// uncertainty under a uniform posterior.
    pub entropy_bits: f64,
    /// True when the candidate set meets the system's k.
    pub meets_k: bool,
}

/// Evaluates the identity protection of a cloaked region against the ground
/// truth population.
pub fn anonymity_of(system: &System, region: &Rect) -> AnonymityReport {
    let candidates = system.grid.count_in_rect(region);
    AnonymityReport {
        candidates,
        entropy_bits: if candidates > 0 {
            (candidates as f64).log2()
        } else {
            0.0
        },
        meets_k: candidates >= system.params.k,
    }
}

/// The center-guess localization attack on one request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CenterAttack {
    /// Distance from the region's center to the host's true position.
    pub guess_error: f64,
    /// Half the region diagonal — the attack's worst-case error bound; an
    /// error close to this bound means the host gained the full benefit of
    /// the region's extent.
    pub half_diagonal: f64,
}

/// Runs the center-guess attack against a cloaking result.
pub fn center_attack(system: &System, result: &CloakingResult) -> CenterAttack {
    let center = result.region.center();
    let truth = system.points[result.host as usize];
    CenterAttack {
        guess_error: center.dist(&truth),
        half_diagonal: 0.5 * result.region.width().hypot(result.region.height()),
    }
}

/// Intersects several regions attributed to the same (unknown) user and
/// returns the surviving candidate ids. An empty intersection means the
/// attribution was wrong — or the cloaking scheme leaked inconsistent
/// regions.
pub fn intersection_attack(system: &System, regions: &[Rect]) -> Vec<UserId> {
    let Some((first, rest)) = regions.split_first() else {
        return Vec::new();
    };
    let mut survivors = system.grid.ids_in_rect(first);
    for r in rest {
        survivors.retain(|&u| r.contains(&system.points[u as usize]));
    }
    survivors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{BoundingAlgo, CloakingEngine, ClusteringAlgo};
    use crate::params::Params;
    use nela_cluster::knn::TieBreak;

    fn system() -> System {
        System::build(&Params {
            k: 5,
            ..Params::scaled(3_000)
        })
    }

    #[test]
    fn served_requests_meet_k_anonymity() {
        let system = system();
        let mut engine = CloakingEngine::new(
            &system,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Secure,
        );
        let mut checked = 0;
        for h in system.host_sequence(60, 3) {
            if let Ok(r) = engine.request(h) {
                let report = anonymity_of(&system, &r.region);
                assert!(
                    report.meets_k,
                    "host {h}: only {} candidates",
                    report.candidates
                );
                assert!(report.entropy_bits >= (system.params.k as f64).log2() - 1e-9);
                checked += 1;
            }
        }
        assert!(checked > 10);
    }

    #[test]
    fn center_attack_error_is_bounded_by_the_region() {
        let system = system();
        let mut engine = CloakingEngine::new(
            &system,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Optimal,
        );
        for h in system.host_sequence(40, 5) {
            if let Ok(r) = engine.request(h) {
                let atk = center_attack(&system, &r);
                assert!(
                    atk.guess_error <= atk.half_diagonal + 1e-12,
                    "center guess cannot beat the geometry"
                );
            }
        }
    }

    #[test]
    fn reciprocity_defeats_the_intersection_attack() {
        // A t-Conn user requesting repeatedly reuses one region: the
        // intersection never shrinks below k.
        let system = system();
        let mut engine = CloakingEngine::new(
            &system,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Secure,
        );
        let host = system
            .host_sequence(200, 7)
            .into_iter()
            .find(|&h| engine.request(h).is_ok())
            .unwrap_or_else(|| {
                panic!(
                    "no servable host in 200-host sample (n={}, k={}, seed=7)",
                    system.points.len(),
                    system.params.k
                )
            });
        let regions: Vec<Rect> = (0..3)
            .map(|_| engine.request(host).unwrap().region)
            .collect();
        let survivors = intersection_attack(&system, &regions);
        assert!(
            survivors.len() >= system.params.k,
            "reciprocity should keep ≥ k candidates, got {}",
            survivors.len()
        );
    }

    #[test]
    fn fresh_groups_leak_under_the_intersection_attack() {
        // The kNN baseline re-groups per request; intersecting a user's
        // successive regions shrinks the candidate set — in the common case
        // all the way to a candidate set below k (the host plus whatever
        // users happen to fall in the overlap).
        let system = system();
        let mut engine = CloakingEngine::new(
            &system,
            ClusteringAlgo::Knn(TieBreak::Id),
            BoundingAlgo::Optimal,
        );
        let mut leaked = false;
        for h in system.host_sequence(200, 9) {
            let Ok(a) = engine.request(h) else { continue };
            let Ok(b) = engine.request(h) else { continue };
            if a.region == b.region {
                continue; // identical groups — no signal this time
            }
            let survivors = intersection_attack(&system, &[a.region, b.region]);
            assert!(
                survivors.contains(&h),
                "the true host always survives the intersection"
            );
            if survivors.len() < system.params.k {
                leaked = true;
                break;
            }
        }
        assert!(leaked, "kNN never leaked below k across the whole workload");
    }

    #[test]
    fn intersection_attack_edge_cases() {
        let system = system();
        assert!(intersection_attack(&system, &[]).is_empty());
        let everything = intersection_attack(&system, &[Rect::UNIT]);
        assert_eq!(everything.len(), system.points.len());
    }
}
