//! System parameters (paper Table I).

use nela_geo::SpatialDistribution;
use serde::{Deserialize, Serialize};

/// All tunables of a NELA deployment, defaulting to the paper's Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Number of users in the system (Table I: 104,770 — the California POI
    /// count).
    pub n_users: usize,
    /// Radio range δ (Table I: 2×10⁻³ in the unit square).
    pub delta: f64,
    /// Maximum number of connected peers M per device (Table I: 10).
    pub max_peers: usize,
    /// Anonymity requirement k (Table I: 10).
    pub k: usize,
    /// Per-round bounding verification cost Cb (Table I: 1).
    pub cb: f64,
    /// Service-request cost coefficient Cr: a POI's content is Cr× larger
    /// than a bounding message (Table I: 1,000).
    pub cr: f64,
    /// Number of cloaking requests S in a workload (Table I: 2,000).
    pub requests: usize,
    /// Spatial law of the synthetic population (substitutes the USGS
    /// California POI dataset; see DESIGN.md).
    pub distribution: SpatialDistribution,
    /// Master seed for the dataset and host sequences.
    pub seed: u64,
    /// Worker threads for system construction and batched request serving.
    /// `1` (the default) runs every pipeline stage serially. Higher values
    /// build a bit-identical system (grid, proximity graph) in parallel;
    /// batch serving then runs concurrently, preserving every cloaking
    /// invariant though per-request attribution may differ from serial
    /// order under registry contention.
    pub threads: usize,
    /// Total registry shards for concurrent batch serving (laid out on the
    /// smallest square grid holding at least this many). `0` (the default)
    /// picks ≈ 4 shards per worker automatically. Ignored when batches run
    /// serially. (The vendored serde derive has no `default` attribute, so
    /// serialized `Params` always carry this field explicitly.)
    pub shards: usize,
}

impl Params {
    /// The paper's Table I settings.
    pub fn table1() -> Self {
        Params {
            n_users: 104_770,
            delta: 2e-3,
            max_peers: 10,
            k: 10,
            cb: 1.0,
            cr: 1000.0,
            requests: 2_000,
            distribution: SpatialDistribution::california(),
            seed: 20090329, // ICDE 2009 opening day
            threads: 1,
            shards: 0,
        }
    }

    /// A scaled-down variant for unit tests and examples: same densities,
    /// smaller population. δ is scaled by √(104770/n) so the expected number
    /// of in-range peers stays comparable.
    pub fn scaled(n_users: usize) -> Self {
        let base = Params::table1();
        let scale = (base.n_users as f64 / n_users as f64).sqrt();
        Params {
            n_users,
            delta: base.delta * scale,
            requests: (base.requests * n_users / base.n_users).max(10),
            ..base
        }
    }

    /// The uniform-model span U = |C|/n of a cluster of `cluster_size`
    /// users (Table I: U = N/104770).
    pub fn uniform_span(&self, cluster_size: usize) -> f64 {
        cluster_size as f64 / self.n_users as f64
    }
}

impl Default for Params {
    fn default() -> Self {
        Params::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let p = Params::table1();
        assert_eq!(p.n_users, 104_770);
        assert_eq!(p.delta, 2e-3);
        assert_eq!(p.max_peers, 10);
        assert_eq!(p.k, 10);
        assert_eq!(p.cb, 1.0);
        assert_eq!(p.cr, 1000.0);
        assert_eq!(p.requests, 2_000);
    }

    #[test]
    fn scaled_preserves_expected_degree() {
        let p = Params::scaled(10_000);
        // n·δ² constant → expected in-range peer count constant.
        let base = Params::table1();
        let density = |p: &Params| p.n_users as f64 * p.delta * p.delta;
        assert!((density(&p) - density(&base)).abs() / density(&base) < 1e-9);
    }

    #[test]
    fn uniform_span_is_cluster_fraction() {
        let p = Params::table1();
        assert!((p.uniform_span(10) - 10.0 / 104_770.0).abs() < 1e-15);
    }

    #[test]
    fn serde_roundtrip_is_stable() {
        // JSON float printing may round the last bit once; after one
        // round-trip the representation must be a fixed point.
        let p = Params::scaled(5_000);
        let once: Params = serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
        let twice: Params = serde_json::from_str(&serde_json::to_string(&once).unwrap()).unwrap();
        assert_eq!(once, twice);
        assert_eq!(once.n_users, p.n_users);
        assert!((once.delta - p.delta).abs() < 1e-12);
    }
}
