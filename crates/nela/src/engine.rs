//! The end-to-end cloaking engine (paper Fig. 3's workflow).
//!
//! A [`CloakingEngine`] owns the shared cluster registry and serves a
//! sequence of host requests:
//!
//! 1. If the host already belongs to a registered cluster, its cloaked
//!    region is reused — zero clustering cost (workflow arrow ®); if the
//!    cluster exists but was never bounded (it was a by-product of another
//!    host's request), only phase 2 runs.
//! 2. Otherwise phase 1 runs under the configured [`ClusteringAlgo`]
//!    (distributed t-connectivity ¶, centralized t-connectivity at the
//!    anonymizer ¬, or the kNN baseline), and all produced clusters are
//!    registered.
//! 3. Phase 2 (secure bounding, workflow arrow ­) computes the cloaked
//!    rectangle under the configured [`BoundingAlgo`].

use crate::params::Params;
use crate::system::System;
use nela_bounding::baselines::{ExponentialPolicy, LinearPolicy};
use nela_bounding::bbox::{secure_bounding_box, BboxOutcome};
use nela_bounding::cost::AreaCost;
use nela_bounding::distribution::Uniform;
use nela_bounding::nbound::SecurePolicy;
use nela_bounding::protocol::{BoundingError, IncrementPolicy};
use nela_cluster::centralized::centralized_k_clustering;
use nela_cluster::distributed::{
    distributed_k_clustering_policy, distributed_k_clustering_with_policy,
};
use nela_cluster::knn::{knn_cluster, TieBreak};
use nela_cluster::registry::{ClaimOutcome, ClusterId, ClusterRegistry, ShardedRegistry};
use nela_cluster::{ClusterError, KPolicy};
use nela_geo::{Point, Rect, UserId};
use nela_netsim::{sim_bounding_box, ConfigError, Network, NetworkConfig, NetworkStats, SimFetch};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Typed failure of one cloaking request: either phase can fail, and under
/// concurrent serving a request can additionally starve on contention. A
/// failed request degrades gracefully — the engine and its registry stay
/// usable for subsequent requests.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// Phase 1 failed: the host cannot reach k users in the remaining WPG
    /// (paper Fig. 5's disconnected problem) or a required peer is down.
    Cluster(ClusterError),
    /// Phase 2 failed: the cluster could not be bounded (empty or malformed
    /// cluster, unreachable participant, misbehaving increment policy).
    Bounding(BoundingError),
    /// Concurrent serving only: the retry budget was exhausted because rival
    /// requests kept claiming members of every computed cluster.
    Contention {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// Phase 1 produced a partition that does not cover the host — a
    /// protocol-level inconsistency (impossible over an honest in-memory
    /// graph). The request fails; nothing is registered, so the engine
    /// stays usable.
    HostNotClustered,
    /// Batch serving only: a worker died before filling this host's result
    /// slot. Reported per-request instead of panicking the whole batch.
    SlotUnfilled,
}

impl From<ClusterError> for RequestError {
    fn from(e: ClusterError) -> Self {
        RequestError::Cluster(e)
    }
}

impl From<BoundingError> for RequestError {
    fn from(e: BoundingError) -> Self {
        RequestError::Bounding(e)
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Cluster(e) => write!(f, "clustering failed: {e}"),
            RequestError::Bounding(e) => write!(f, "bounding failed: {e}"),
            RequestError::Contention { attempts } => {
                write!(f, "request starved after {attempts} contended attempts")
            }
            RequestError::HostNotClustered => {
                write!(f, "clustering returned a partition that misses the host")
            }
            RequestError::SlotUnfilled => {
                write!(f, "batch worker never filled this request's result slot")
            }
        }
    }
}

impl std::error::Error for RequestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RequestError::Cluster(e) => Some(e),
            RequestError::Bounding(e) => Some(e),
            RequestError::Contention { .. }
            | RequestError::HostNotClustered
            | RequestError::SlotUnfilled => None,
        }
    }
}

/// Attempts per host before [`CloakingEngine::request_many`] reports
/// [`RequestError::Contention`]; mirrors the retry budget of
/// `nela-netsim`'s `ConcurrentWorkload`.
const MAX_CONCURRENT_ATTEMPTS: u32 = 16;

/// Phase-1 algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusteringAlgo {
    /// Distributed t-connectivity k-clustering (Algorithm 2) — the paper's
    /// proposal.
    TConnDistributed,
    /// Centralized t-connectivity k-clustering at an anonymizer that holds
    /// the full WPG (Algorithm 1): the whole population is clustered when
    /// the first request arrives, costing one message per user.
    TConnCentralized,
    /// The kNN baseline with the given tie-break. Modeled after Chow et
    /// al.'s peer-to-peer grouping (the paper's reference \[8\]): **every**
    /// request forms a fresh group of the host plus its k−1 nearest
    /// not-yet-clustered users — there is no cluster reuse, which is why the
    /// paper's Fig. 12(a) shows kNN's cost flat in S while its region size
    /// deteriorates (hosts inside depleted neighborhoods must span far).
    Knn(TieBreak),
    /// hilbASR (Ghinita et al., the paper's reference \[7\]): every user
    /// submits its **exact coordinates** to the anonymizer, which sorts the
    /// population along a Hilbert curve and buckets every k consecutive
    /// users. The quality ceiling of position-exposing schemes — the very
    /// exposure NELA exists to eliminate. Included as the privacy-tradeoff
    /// reference, never as a recommendation.
    HilbAsr,
}

/// Phase-2 algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundingAlgo {
    /// Non-private exact bounding box (benchmark only).
    Optimal,
    /// The paper's secure bounding: cost-model-optimal N-bounding increments.
    Secure,
    /// Fixed fine increments (one quarter of the model span U per round) —
    /// the most conservative progressive baseline: most rounds, tightest
    /// bound.
    Linear,
    /// First increment U, then doubling — the most aggressive baseline:
    /// fewest rounds, loosest bound.
    Exponential,
}

/// Outcome of one cloaking request.
#[derive(Debug, Clone)]
pub struct CloakingResult {
    /// The requesting host.
    pub host: UserId,
    /// The cloaked region sent with the service request.
    pub region: Rect,
    /// Members in the host's k-anonymity cluster.
    pub cluster_size: usize,
    /// Phase-1 messages (0 when the cluster was reused).
    pub clustering_messages: u64,
    /// Phase-2 verification messages (0 when the region was reused).
    pub bounding_messages: u64,
    /// Phase-2 rounds across the four directional runs.
    pub bounding_rounds: usize,
    /// The anonymity requirement this request had to meet: `Params::k`
    /// under the uniform policy, the max personalized `k_i` over the
    /// host's cluster members otherwise (what `verify::audit_result`
    /// checks the region against).
    pub required_k: usize,
    /// True when both phases were skipped entirely.
    pub reused: bool,
    /// CPU time spent computing bounding increments and running the
    /// protocol logic (the paper's Fig. 13(d) metric).
    pub bounding_cpu: Duration,
}

/// The engine serving a request workload over one [`System`].
pub struct CloakingEngine<'a> {
    system: &'a System,
    clustering: ClusteringAlgo,
    bounding: BoundingAlgo,
    registry: ClusterRegistry,
    centralized_built: bool,
    /// Centralized setup cost incurred by a request that then failed;
    /// attributed to the next successful request so workload totals stay
    /// exact.
    carried_messages: u64,
    /// kNN mode only: users consumed by earlier groups (the kNN baseline
    /// has no shared registry — each request forms a fresh group).
    knn_taken: Vec<bool>,
    /// Personalized per-user anonymity levels (`k_of[u]` is user u's
    /// `k_i`); `None` serves everyone at the uniform `Params::k`.
    k_of: Option<Vec<usize>>,
    /// Reused buffer for member coordinates on the serial bounding path —
    /// once warm, a cold (non-reuse) request gathers points without
    /// touching the heap.
    bound_scratch: Vec<Point>,
}

/// Per-worker scratch reused across requests on the sharded serving path:
/// the reuse fast path fills `members` in place instead of cloning the
/// member list, and the bounding path gathers `member_points` into a reused
/// buffer — so a warmed worker serves region-reuse requests with zero heap
/// allocations (the alloc-guard test pins this).
#[derive(Default)]
struct RequestScratch {
    members: Vec<UserId>,
    member_points: Vec<Point>,
}

thread_local! {
    /// One scratch per serving thread. [`EngineSession::request`] takes
    /// `&self` from arbitrary caller threads, so the scratch cannot live in
    /// the session (or engine) without a lock — thread-local storage gives
    /// each worker its own warm buffers for free.
    static REQUEST_SCRATCH: std::cell::RefCell<RequestScratch> =
        std::cell::RefCell::new(RequestScratch::default());
}

impl<'a> CloakingEngine<'a> {
    /// Creates an engine with empty shared state.
    pub fn new(system: &'a System, clustering: ClusteringAlgo, bounding: BoundingAlgo) -> Self {
        CloakingEngine {
            system,
            clustering,
            bounding,
            registry: ClusterRegistry::new(system.points.len()),
            centralized_built: false,
            carried_messages: 0,
            knn_taken: vec![false; system.points.len()],
            k_of: None,
            bound_scratch: Vec::new(),
        }
    }

    /// Creates an engine that continues serving over an existing registry —
    /// the continuous-pipeline case where the [`System`] snapshot is rebuilt
    /// after a mobility tick but cluster assignments (minus invalidated
    /// ones) survive. Meaningful for the distributed algorithm; the
    /// centralized/hilbASR modes would re-cluster the whole population on
    /// top of the carried assignments.
    ///
    /// # Panics
    /// Panics if the registry population differs from the system's.
    pub fn with_registry(
        system: &'a System,
        clustering: ClusteringAlgo,
        bounding: BoundingAlgo,
        registry: ClusterRegistry,
    ) -> Self {
        assert_eq!(
            registry.population(),
            system.points.len(),
            "registry population does not match system"
        );
        CloakingEngine {
            system,
            clustering,
            bounding,
            registry,
            centralized_built: false,
            carried_messages: 0,
            knn_taken: vec![false; system.points.len()],
            k_of: None,
            bound_scratch: Vec::new(),
        }
    }

    /// Installs personalized per-user anonymity levels: `k_of[u]` is user
    /// `u`'s own `k_i`, and every produced cluster must reach the max
    /// `k_i` of its members. With all levels equal to `Params::k` the
    /// engine is bit-identical to the uniform path (the differential
    /// tests pin this). Only meaningful for the distributed algorithm —
    /// the centralized, hilbASR, and kNN baselines have no notion of a
    /// per-member requirement.
    ///
    /// # Panics
    /// Panics unless the engine runs [`ClusteringAlgo::TConnDistributed`],
    /// if `k_of` does not cover the population, or if any level is 0.
    pub fn with_personalized_k(mut self, k_of: Vec<usize>) -> Self {
        assert_eq!(
            self.clustering,
            ClusteringAlgo::TConnDistributed,
            "personalized k requires the distributed clustering algorithm"
        );
        assert_eq!(
            k_of.len(),
            self.system.points.len(),
            "one k_i per user required"
        );
        assert!(k_of.iter().all(|&k| k >= 1), "every k_i must be at least 1");
        self.k_of = Some(k_of);
        self
    }

    /// The effective anonymity policy of this engine.
    fn kp(&self) -> KPolicy<'_> {
        match &self.k_of {
            Some(ks) => KPolicy::PerUser(ks),
            None => KPolicy::Uniform(self.system.params.k),
        }
    }

    /// The requirement a cluster with these members had to meet.
    fn required_k_of(&self, members: &[UserId]) -> usize {
        self.kp().required(members.iter().copied())
    }

    /// Read access to the shared registry (audits, tests).
    pub fn registry(&self) -> &ClusterRegistry {
        &self.registry
    }

    /// Mutable access to the shared registry (cluster lifetime management:
    /// the mobility driver invalidates clusters whose members drifted apart).
    pub fn registry_mut(&mut self) -> &mut ClusterRegistry {
        &mut self.registry
    }

    /// Consumes the engine, returning the registry so it can be carried into
    /// the next tick's engine via [`CloakingEngine::with_registry`].
    pub fn into_registry(self) -> ClusterRegistry {
        self.registry
    }

    /// Serves one cloaking request.
    ///
    /// # Errors
    /// [`RequestError::Cluster`] when the host cannot reach k users in the
    /// remaining WPG (paper Fig. 5's disconnected problem);
    /// [`RequestError::Bounding`] when phase 2 fails on a malformed cluster.
    pub fn request(&mut self, host: UserId) -> Result<CloakingResult, RequestError> {
        let result = self.request_inner(host);
        record_outcome(&result);
        result
    }

    fn request_inner(&mut self, host: UserId) -> Result<CloakingResult, RequestError> {
        // The kNN baseline forms a fresh group per request (no reuse).
        if let ClusteringAlgo::Knn(tie) = self.clustering {
            return self.request_knn(host, tie);
        }
        // Reuse path: cluster (and possibly region) already known.
        if let Some(id) = self.registry.cluster_id_of(host) {
            return self.serve_registered(host, id, 0);
        }

        // Phase 1.
        let (host_cluster_id, clustering_messages) = match self.clustering {
            ClusteringAlgo::TConnDistributed => {
                let removed = |u: UserId| self.registry.is_clustered(u);
                let cluster_span = nela_obs::span(nela_obs::stage::CLUSTERING);
                let outcome =
                    distributed_k_clustering_policy(&self.system.wpg, host, self.kp(), &removed);
                drop(cluster_span);
                let out = outcome?;
                // Check coverage before registering anything: a partition
                // that misses the host must fail the request, not poison
                // the registry (and must never panic the engine).
                if !out.all_clusters.iter().any(|c| c.contains(host)) {
                    return Err(RequestError::HostNotClustered);
                }
                let mut host_id = None;
                for c in out.all_clusters {
                    let contains_host = c.contains(host);
                    let id = self.registry.register(c);
                    if contains_host {
                        host_id = Some(id);
                    }
                }
                let host_id = host_id.ok_or(RequestError::HostNotClustered)?;
                (host_id, out.involved_users as u64)
            }
            ClusteringAlgo::TConnCentralized => {
                let setup = self.ensure_centralized_built() + self.carried_messages;
                self.carried_messages = 0;
                let Some(id) = self.registry.cluster_id_of(host) else {
                    // Host sits in an underfilled component; carry the setup
                    // cost (if any) to the next served request.
                    self.carried_messages = setup;
                    return Err(ClusterError::ComponentTooSmall { reachable: 0 }.into());
                };
                (id, setup)
            }
            ClusteringAlgo::HilbAsr => {
                let setup = self.ensure_hilb_asr_built() + self.carried_messages;
                self.carried_messages = 0;
                let Some(id) = self.registry.cluster_id_of(host) else {
                    // Only possible when the population is below k.
                    self.carried_messages = setup;
                    return Err(ClusterError::ComponentTooSmall { reachable: 0 }.into());
                };
                (id, setup)
            }
            // Already dispatched at the top of `request`; keep the arm
            // functional (not `unreachable!`) so no panic path survives on
            // the request surface.
            ClusteringAlgo::Knn(tie) => return self.request_knn(host, tie),
        };

        self.serve_registered(host, host_cluster_id, clustering_messages)
    }

    /// Serves a batch of cloaking requests, returning one result per host in
    /// `hosts` order.
    ///
    /// With `threads <= 1` — or for any clustering algorithm other than the
    /// distributed one, whose setup is inherently global — this is exactly
    /// the serial `for h in hosts { engine.request(h) }` loop, result for
    /// result. With more threads and [`ClusteringAlgo::TConnDistributed`],
    /// the batch runs on the sharded registry path
    /// ([`CloakingEngine::request_many_sharded`]) with
    /// [`auto_shard_axis`]-many shards per axis (or the count pinned by
    /// [`Params::shards`]): requests lock only the grid shards their cluster
    /// touches, conflicts trigger a bounded recompute, and a starved request
    /// reports [`RequestError::Contention`] instead of deadlocking.
    pub fn request_many(
        &mut self,
        hosts: &[UserId],
        threads: usize,
    ) -> Vec<Result<CloakingResult, RequestError>> {
        let threads = nela_par::effective_threads(threads, hosts.len());
        if threads <= 1 || self.clustering != ClusteringAlgo::TConnDistributed {
            return hosts.iter().map(|&h| self.request(h)).collect();
        }
        let axis = match self.system.params.shards {
            0 => auto_shard_axis(threads),
            shards => shard_axis_for_total(shards),
        };
        self.request_many_sharded(hosts, threads, axis)
    }

    /// The pre-sharding batch path, kept as the measured baseline: one
    /// global mutex around the whole registry, every attempt snapshotting
    /// the O(n) membership table under the lock. Semantically equivalent to
    /// [`CloakingEngine::request_many`]; only its scaling differs (the
    /// snapshot copy serializes workers on large populations). Exercised by
    /// the differential tests in `tests/parallel.rs` and benchmarked
    /// against the sharded path by `exp_parallel`.
    pub fn request_many_locked(
        &mut self,
        hosts: &[UserId],
        threads: usize,
    ) -> Vec<Result<CloakingResult, RequestError>> {
        let threads = nela_par::effective_threads(threads, hosts.len());
        if threads <= 1 || self.clustering != ClusteringAlgo::TConnDistributed {
            return hosts.iter().map(|&h| self.request(h)).collect();
        }
        // Move the registry behind a lock for the scope of the batch; the
        // placeholder is never observed (workers only use the mutex).
        let registry = Mutex::new(std::mem::replace(
            &mut self.registry,
            ClusterRegistry::new(0),
        ));
        let this: &CloakingEngine<'a> = self;
        let results: Vec<Option<Result<CloakingResult, RequestError>>> = {
            let mut slots: Vec<Option<Result<CloakingResult, RequestError>>> =
                vec![None; hosts.len()];
            std::thread::scope(|scope| {
                let registry = &registry;
                let ranges = nela_par::chunk_ranges(hosts.len(), threads);
                let mut rest = slots.as_mut_slice();
                for range in ranges {
                    let (chunk, tail) = rest.split_at_mut(range.len());
                    rest = tail;
                    scope.spawn(move || {
                        for (&host, slot) in hosts[range].iter().zip(chunk.iter_mut()) {
                            let r = this.serve_concurrent(registry, host);
                            record_outcome(&r);
                            *slot = Some(r);
                        }
                    });
                }
            });
            slots
        };
        self.registry = registry.into_inner();
        results
            .into_iter()
            .map(|r| r.unwrap_or(Err(RequestError::SlotUnfilled)))
            .collect()
    }

    /// Serves a batch over a [`ShardedRegistry`] with `shards_per_axis`²
    /// grid shards: membership checks are lock-free atomic reads, and a
    /// claim locks only the shards hosting the produced clusters' members
    /// (in ascending shard order, so rival claims cannot deadlock). With
    /// one worker the machinery still runs but is deterministic — the
    /// results equal the serial `request` loop for any shard count, which
    /// the equivalence tests pin. Falls back to the serial loop for
    /// non-distributed algorithms, whose setup is inherently global.
    pub fn request_many_sharded(
        &mut self,
        hosts: &[UserId],
        threads: usize,
        shards_per_axis: usize,
    ) -> Vec<Result<CloakingResult, RequestError>> {
        if self.clustering != ClusteringAlgo::TConnDistributed {
            return hosts.iter().map(|&h| self.request(h)).collect();
        }
        let workers = nela_par::effective_threads(threads.max(1), hosts.len()).max(1);
        let base = std::mem::replace(&mut self.registry, ClusterRegistry::new(0));
        let sharded = ShardedRegistry::new(base, &self.system.points, shards_per_axis);
        let this: &CloakingEngine<'a> = self;
        let mut slots: Vec<Option<Result<CloakingResult, RequestError>>> = vec![None; hosts.len()];
        if workers <= 1 {
            for (&host, slot) in hosts.iter().zip(slots.iter_mut()) {
                let r = this.serve_sharded(&sharded, host);
                record_outcome(&r);
                *slot = Some(r);
            }
        } else {
            std::thread::scope(|scope| {
                let sharded = &sharded;
                let ranges = nela_par::chunk_ranges(hosts.len(), workers);
                let mut rest = slots.as_mut_slice();
                for range in ranges {
                    let (chunk, tail) = rest.split_at_mut(range.len());
                    rest = tail;
                    scope.spawn(move || {
                        for (&host, slot) in hosts[range].iter().zip(chunk.iter_mut()) {
                            let r = this.serve_sharded(sharded, host);
                            record_outcome(&r);
                            *slot = Some(r);
                        }
                    });
                }
            });
        }
        self.registry = sharded.into_registry();
        slots
            .into_iter()
            .map(|r| r.unwrap_or(Err(RequestError::SlotUnfilled)))
            .collect()
    }

    /// One optimistic request against the sharded registry. Reuse and
    /// removed-membership checks are lock-free atomic reads; clustering and
    /// bounding run with no locks held; only the claim itself takes the
    /// (few) shard locks the produced clusters touch.
    fn serve_sharded(
        &self,
        sharded: &ShardedRegistry,
        host: UserId,
    ) -> Result<CloakingResult, RequestError> {
        REQUEST_SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            self.serve_sharded_with(sharded, host, &mut scratch)
        })
    }

    /// [`CloakingEngine::serve_sharded`] with the worker's scratch threaded
    /// in explicitly, so the steady-state paths never allocate.
    fn serve_sharded_with(
        &self,
        sharded: &ShardedRegistry,
        host: UserId,
        scratch: &mut RequestScratch,
    ) -> Result<CloakingResult, RequestError> {
        let RequestScratch {
            members,
            member_points,
        } = scratch;
        for _attempt in 1..=MAX_CONCURRENT_ATTEMPTS {
            // Reuse path: the host is already in a cluster (possibly
            // claimed by a rival since the last attempt). `lookup_into`
            // fills the reused scratch instead of cloning the member list.
            if let Some((id, region)) = sharded.lookup_into(host, members) {
                return self.finish_sharded(sharded, host, id, members, region, 0, member_points);
            }
            // Membership probes read the assignment atomics directly — one
            // plain load each, against the locked path's O(n) snapshot copy
            // per attempt. The view can go stale mid-computation, exactly
            // like a snapshot can; safety never rests on it, because
            // `try_claim` re-validates every member under the shard locks
            // and reports a conflict. The host is force-read as present: a
            // rival may claim it between the `lookup` above and the first
            // probe, and the algorithm (correctly) asserts its host is
            // never removed — the claim-time check catches that rival too.
            let removed = |u: UserId| u != host && sharded.is_clustered(u);
            let cluster_span = nela_obs::span(nela_obs::stage::CLUSTERING);
            let outcome =
                distributed_k_clustering_policy(&self.system.wpg, host, self.kp(), &removed);
            drop(cluster_span);
            let out = outcome?;
            if !out.all_clusters.iter().any(|c| c.contains(host)) {
                return Err(RequestError::HostNotClustered);
            }
            let claim_span = nela_obs::span(nela_obs::stage::REGISTRY_CLAIM);
            let claim = sharded.try_claim(host, out.all_clusters);
            drop(claim_span);
            match claim {
                ClaimOutcome::Claimed { id, members } => {
                    return self.finish_sharded(
                        sharded,
                        host,
                        id,
                        &members,
                        None,
                        out.involved_users as u64,
                        member_points,
                    );
                }
                ClaimOutcome::Conflict => {
                    // Rival won a member: recompute on the next attempt.
                    nela_obs::add(nela_obs::counter::CLAIM_RETRIES, 1);
                    continue;
                }
                ClaimOutcome::HostMissing => return Err(RequestError::HostNotClustered),
            }
        }
        Err(RequestError::Contention {
            attempts: MAX_CONCURRENT_ATTEMPTS,
        })
    }

    /// Phase 2 for a sharded-path host whose cluster id is claimed: reuses
    /// the stored region or bounds with no locks held, then publishes the
    /// region (first writer wins — bounding is deterministic per cluster,
    /// so rivals compute the identical rectangle).
    #[allow(clippy::too_many_arguments)]
    fn finish_sharded(
        &self,
        sharded: &ShardedRegistry,
        host: UserId,
        id: ClusterId,
        members: &[UserId],
        region: Option<Rect>,
        clustering_messages: u64,
        points_scratch: &mut Vec<Point>,
    ) -> Result<CloakingResult, RequestError> {
        let cluster_size = members.len();
        let required_k = self.required_k_of(members);
        if let Some(region) = region {
            return Ok(CloakingResult {
                host,
                region,
                cluster_size,
                clustering_messages,
                bounding_messages: 0,
                bounding_rounds: 0,
                required_k,
                reused: clustering_messages == 0,
                bounding_cpu: Duration::ZERO,
            });
        }
        points_scratch.clear();
        points_scratch.extend(members.iter().map(|&m| self.system.points[m as usize]));
        let host_point = self.system.points[host as usize];
        let started = Instant::now();
        let bbox = self.bound(points_scratch, host_point, cluster_size)?;
        let bounding_cpu = started.elapsed();
        nela_obs::observe_duration(nela_obs::stage::BOUNDING, bounding_cpu);
        sharded.set_region(id, bbox.rect);
        Ok(CloakingResult {
            host,
            region: bbox.rect,
            cluster_size,
            clustering_messages,
            bounding_messages: bbox.messages,
            bounding_rounds: bbox.rounds,
            required_k,
            reused: false,
            bounding_cpu,
        })
    }

    /// One optimistic concurrent request against the locked registry
    /// (distributed algorithm only). Never holds the lock across clustering
    /// or bounding.
    fn serve_concurrent(
        &self,
        registry: &Mutex<ClusterRegistry>,
        host: UserId,
    ) -> Result<CloakingResult, RequestError> {
        let n = self.system.points.len();
        for _attempt in 1..=MAX_CONCURRENT_ATTEMPTS {
            // Snapshot the membership table (reuse path included).
            type KnownCluster = Option<(ClusterId, Vec<UserId>, Option<Rect>)>;
            let (known, snapshot): (KnownCluster, Vec<bool>) = {
                let reg = registry.lock();
                match reg.cluster_id_of(host) {
                    Some(id) => {
                        let rc = reg.get(id);
                        (
                            Some((id, rc.cluster.members.clone(), rc.region)),
                            Vec::new(),
                        )
                    }
                    None => (
                        None,
                        (0..n as UserId).map(|u| reg.is_clustered(u)).collect(),
                    ),
                }
            };
            if let Some((id, members, region)) = known {
                return self.finish_concurrent(registry, host, id, &members, region, 0);
            }
            // Phase 1 outside the lock.
            let removed = |u: UserId| snapshot[u as usize];
            let cluster_span = nela_obs::span(nela_obs::stage::CLUSTERING);
            let outcome =
                distributed_k_clustering_policy(&self.system.wpg, host, self.kp(), &removed);
            drop(cluster_span);
            let out = outcome?;
            // A partition that misses the host is a typed failure, not a
            // retry (and must never be registered).
            if !out.all_clusters.iter().any(|c| c.contains(host)) {
                return Err(RequestError::HostNotClustered);
            }
            // Validate and claim atomically.
            let claimed = {
                let mut reg = registry.lock();
                if let Some(id) = reg.cluster_id_of(host) {
                    // A rival clustered us meanwhile: reuse its cluster.
                    let rc = reg.get(id);
                    Some((id, rc.cluster.members.clone(), rc.region))
                } else if out
                    .all_clusters
                    .iter()
                    .flat_map(|c| &c.members)
                    .any(|&m| reg.is_clustered(m))
                {
                    None // a rival claimed one of our users: recompute
                } else {
                    let mut host_id = None;
                    for c in out.all_clusters {
                        let contains_host = c.contains(host);
                        let members = c.members.clone();
                        let id = reg.register(c);
                        if contains_host {
                            host_id = Some((id, members, None));
                        }
                    }
                    host_id
                }
            };
            if let Some((id, members, region)) = claimed {
                return self.finish_concurrent(
                    registry,
                    host,
                    id,
                    &members,
                    region,
                    out.involved_users as u64,
                );
            }
            nela_obs::add(nela_obs::counter::CLAIM_RETRIES, 1);
        }
        Err(RequestError::Contention {
            attempts: MAX_CONCURRENT_ATTEMPTS,
        })
    }

    /// Phase 2 for a concurrently served host whose cluster id is claimed:
    /// reuses the stored region or bounds outside the lock, then publishes
    /// the region (first writer wins — bounding is deterministic per
    /// cluster, so rivals compute the identical rectangle).
    fn finish_concurrent(
        &self,
        registry: &Mutex<ClusterRegistry>,
        host: UserId,
        id: ClusterId,
        members: &[UserId],
        region: Option<Rect>,
        clustering_messages: u64,
    ) -> Result<CloakingResult, RequestError> {
        let cluster_size = members.len();
        let required_k = self.required_k_of(members);
        if let Some(region) = region {
            return Ok(CloakingResult {
                host,
                region,
                cluster_size,
                clustering_messages,
                bounding_messages: 0,
                bounding_rounds: 0,
                required_k,
                reused: clustering_messages == 0,
                bounding_cpu: Duration::ZERO,
            });
        }
        let member_points: Vec<Point> = members
            .iter()
            .map(|&m| self.system.points[m as usize])
            .collect();
        let host_point = self.system.points[host as usize];
        let started = Instant::now();
        let bbox = self.bound(&member_points, host_point, cluster_size)?;
        let bounding_cpu = started.elapsed();
        nela_obs::observe_duration(nela_obs::stage::BOUNDING, bounding_cpu);
        registry.lock().set_region(id, bbox.rect);
        Ok(CloakingResult {
            host,
            region: bbox.rect,
            cluster_size,
            clustering_messages,
            bounding_messages: bbox.messages,
            bounding_rounds: bbox.rounds,
            required_k,
            reused: false,
            bounding_cpu,
        })
    }

    /// Serves a kNN-baseline request: a fresh group of the host plus its
    /// k−1 nearest users not consumed by earlier groups, bounded
    /// immediately. Nothing is reused.
    fn request_knn(&mut self, host: UserId, tie: TieBreak) -> Result<CloakingResult, RequestError> {
        let taken = &self.knn_taken;
        let removed = |u: UserId| u != host && taken[u as usize];
        let out = knn_cluster(&self.system.wpg, host, self.system.params.k, &removed, tie)?;
        for &m in &out.cluster.members {
            self.knn_taken[m as usize] = true;
        }
        let members: Vec<Point> = out
            .cluster
            .members
            .iter()
            .map(|&m| self.system.points[m as usize])
            .collect();
        let host_point = self.system.points[host as usize];
        let started = Instant::now();
        let bbox = self.bound(&members, host_point, out.cluster.len())?;
        let bounding_cpu = started.elapsed();
        nela_obs::observe_duration(nela_obs::stage::BOUNDING, bounding_cpu);
        Ok(CloakingResult {
            host,
            region: bbox.rect,
            cluster_size: out.cluster.len(),
            clustering_messages: out.involved_users as u64,
            bounding_messages: bbox.messages,
            bounding_rounds: bbox.rounds,
            required_k: self.system.params.k,
            reused: false,
            bounding_cpu,
        })
    }

    /// Builds the global clustering on the first centralized request.
    /// Returns the setup cost in messages (the whole population submits its
    /// proximity information once), 0 on later calls.
    fn ensure_centralized_built(&mut self) -> u64 {
        if self.centralized_built {
            return 0;
        }
        self.centralized_built = true;
        let global = centralized_k_clustering(&self.system.wpg, self.system.params.k);
        for c in global.clusters {
            self.registry.register(c);
        }
        self.system.points.len() as u64
    }

    /// Builds the hilbASR bucketing on the first request: every user ships
    /// its exact coordinates to the anonymizer (one message each). The
    /// position exposure is the point of this baseline.
    fn ensure_hilb_asr_built(&mut self) -> u64 {
        if self.centralized_built {
            return 0;
        }
        self.centralized_built = true;
        for c in
            nela_cluster::hilbert::hilb_asr_partition(&self.system.points, self.system.params.k)
        {
            self.registry.register(c);
        }
        self.system.points.len() as u64
    }

    /// Completes a request for a host whose cluster id is known: reuses the
    /// stored region or runs phase 2 now.
    fn serve_registered(
        &mut self,
        host: UserId,
        id: ClusterId,
        clustering_messages: u64,
    ) -> Result<CloakingResult, RequestError> {
        let rc = self.registry.get(id);
        let cluster_size = rc.cluster.len();
        let required_k = self.required_k_of(&rc.cluster.members);
        if let Some(region) = rc.region {
            return Ok(CloakingResult {
                host,
                region,
                cluster_size,
                clustering_messages,
                bounding_messages: 0,
                bounding_rounds: 0,
                required_k,
                reused: clustering_messages == 0,
                bounding_cpu: Duration::ZERO,
            });
        }
        // Take the engine's scratch so `self.bound(&members, ..)` can borrow
        // `&self` while the buffer is out; `mem::take` keeps its capacity,
        // so the gather is allocation-free once warm.
        let mut members = std::mem::take(&mut self.bound_scratch);
        members.clear();
        members.extend(
            rc.cluster
                .members
                .iter()
                .map(|&m| self.system.points[m as usize]),
        );
        let host_point = self.system.points[host as usize];
        let started = Instant::now();
        let bbox = self.bound(&members, host_point, cluster_size);
        let bounding_cpu = started.elapsed();
        self.bound_scratch = members;
        let bbox = bbox?;
        nela_obs::observe_duration(nela_obs::stage::BOUNDING, bounding_cpu);
        self.registry.set_region(id, bbox.rect);
        Ok(CloakingResult {
            host,
            region: bbox.rect,
            cluster_size,
            clustering_messages,
            bounding_messages: bbox.messages,
            bounding_rounds: bbox.rounds,
            required_k,
            reused: false,
            bounding_cpu,
        })
    }

    /// Runs phase 2 under the configured algorithm.
    fn bound(
        &self,
        members: &[Point],
        host_point: Point,
        cluster_size: usize,
    ) -> Result<BboxOutcome, BoundingError> {
        let p: &Params = &self.system.params;
        let span = p.uniform_span(cluster_size);
        match self.bounding {
            BoundingAlgo::Optimal => {
                let rect = Rect::bounding(members).ok_or(BoundingError::EmptyCluster)?;
                Ok(BboxOutcome {
                    rect,
                    messages: cluster_size as u64,
                    rounds: 1,
                    runs: optimal_runs(members, rect),
                })
            }
            BoundingAlgo::Secure => {
                // Per-dimension request-cost coefficient: a bound of extent x
                // on each axis transfers ≈ Cr · n · x² message units.
                let cr_1d = p.cr * p.n_users as f64;
                secure_bounding_box(members, host_point, Rect::UNIT, || {
                    Box::new(SecurePolicy::new(
                        Uniform::new(span),
                        AreaCost { cr: cr_1d },
                        p.cb,
                    )) as Box<dyn IncrementPolicy>
                })
            }
            BoundingAlgo::Linear => secure_bounding_box(members, host_point, Rect::UNIT, || {
                Box::new(LinearPolicy::new(span / 4.0)) as Box<dyn IncrementPolicy>
            }),
            BoundingAlgo::Exponential => {
                secure_bounding_box(members, host_point, Rect::UNIT, || {
                    Box::new(ExponentialPolicy::new(span)) as Box<dyn IncrementPolicy>
                })
            }
        }
    }

    /// Phase 2 over the simulated network: the same four directional runs
    /// and increment policies as [`CloakingEngine::bound`], but every
    /// verification round-trips through [`Network::rpc`]
    /// (`nela_netsim::sim_bounding_box`). Over a lossless network this is
    /// bit-identical to the in-memory path; loss adds retransmissions and
    /// can fail the request with [`BoundingError::Unreachable`].
    ///
    /// [`BoundingAlgo::Optimal`] has no per-round protocol to simulate (its
    /// single exact message is an analytic fiction), so it stays local.
    fn bound_net(
        &self,
        net: &mut Network,
        host: UserId,
        members: &[(UserId, Point)],
        host_point: Point,
        cluster_size: usize,
    ) -> Result<BboxOutcome, BoundingError> {
        let p: &Params = &self.system.params;
        let span = p.uniform_span(cluster_size);
        match self.bounding {
            BoundingAlgo::Optimal => {
                let points: Vec<Point> = members.iter().map(|&(_, pt)| pt).collect();
                let rect = Rect::bounding(&points).ok_or(BoundingError::EmptyCluster)?;
                Ok(BboxOutcome {
                    rect,
                    messages: cluster_size as u64,
                    rounds: 1,
                    runs: optimal_runs(&points, rect),
                })
            }
            BoundingAlgo::Secure => {
                let cr_1d = p.cr * p.n_users as f64;
                sim_bounding_box(net, host, host_point, members, Rect::UNIT, || {
                    Box::new(SecurePolicy::new(
                        Uniform::new(span),
                        AreaCost { cr: cr_1d },
                        p.cb,
                    )) as Box<dyn IncrementPolicy>
                })
            }
            BoundingAlgo::Linear => {
                sim_bounding_box(net, host, host_point, members, Rect::UNIT, || {
                    Box::new(LinearPolicy::new(span / 4.0)) as Box<dyn IncrementPolicy>
                })
            }
            BoundingAlgo::Exponential => {
                sim_bounding_box(net, host, host_point, members, Rect::UNIT, || {
                    Box::new(ExponentialPolicy::new(span)) as Box<dyn IncrementPolicy>
                })
            }
        }
    }

    /// One optimistic request against the sharded registry with both phases
    /// carried by the simulated network: phase-1 adjacency fetches run over
    /// [`SimFetch`] and phase-2 verifications over
    /// [`nela_netsim::sim_bounding_box`]. The registry itself stays
    /// in-process (it models state the host already holds), so the reuse
    /// fast path never touches the radio.
    ///
    /// Each attempt gets a fresh [`Network`] seeded from `(config seed,
    /// host)`, so RPC loss/latency outcomes are a pure function of the
    /// request — independent of worker count and interleaving — and a
    /// single-worker session replays bit-identically.
    fn serve_sharded_net(
        &self,
        sharded: &ShardedRegistry,
        host: UserId,
        net_state: &NetState,
        scratch: &mut RequestScratch,
    ) -> Result<CloakingResult, RequestError> {
        let members = &mut scratch.members;
        let mut tally = NetworkStats::default();
        let mut virtual_secs = 0.0f64;
        let mut used_network = false;
        let absorb = |tally: &mut NetworkStats, vs: &mut f64, net: &Network| {
            let s = net.stats();
            tally.transmissions += s.transmissions;
            tally.rpcs_ok += s.rpcs_ok;
            tally.rpcs_failed += s.rpcs_failed;
            tally.lost += s.lost;
            tally.retransmits += s.retransmits;
            tally.timeouts += s.timeouts;
            *vs += net.now();
        };
        let mut outcome: Result<CloakingResult, RequestError> = Err(RequestError::Contention {
            attempts: MAX_CONCURRENT_ATTEMPTS,
        });
        for _attempt in 1..=MAX_CONCURRENT_ATTEMPTS {
            // Reuse path: the host's own registry entry, no radio involved.
            if let Some((id, region)) = sharded.lookup_into(host, members) {
                if region.is_some() {
                    outcome = self.finish_sharded_net_reused(host, members, region);
                    break;
                }
                // Cluster known but never bounded: phase 2 only.
                let mut net = net_state.template.with_seed(mix_seed(net_state.seed, host));
                used_network = true;
                outcome = self.finish_sharded_net(sharded, host, id, members, 0, &mut net);
                absorb(&mut tally, &mut virtual_secs, &net);
                break;
            }
            let mut net = net_state.template.with_seed(mix_seed(net_state.seed, host));
            used_network = true;
            // Same lock-free removed-probe contract as `serve_sharded_with`.
            let removed = |u: UserId| u != host && sharded.is_clustered(u);
            let cluster_span = nela_obs::span(nela_obs::stage::CLUSTERING);
            let clustered = {
                let mut fetch = SimFetch::new(&mut net, &self.system.wpg, host);
                distributed_k_clustering_with_policy(&mut fetch, host, self.kp(), &removed)
            };
            drop(cluster_span);
            let out = match clustered {
                Ok(out) => out,
                Err(e) => {
                    absorb(&mut tally, &mut virtual_secs, &net);
                    outcome = Err(e.into());
                    break;
                }
            };
            if !out.all_clusters.iter().any(|c| c.contains(host)) {
                absorb(&mut tally, &mut virtual_secs, &net);
                outcome = Err(RequestError::HostNotClustered);
                break;
            }
            let claim_span = nela_obs::span(nela_obs::stage::REGISTRY_CLAIM);
            let claim = sharded.try_claim(host, out.all_clusters);
            drop(claim_span);
            match claim {
                ClaimOutcome::Claimed {
                    id,
                    members: claimed,
                } => {
                    outcome = self.finish_sharded_net(
                        sharded,
                        host,
                        id,
                        &claimed,
                        out.involved_users as u64,
                        &mut net,
                    );
                    absorb(&mut tally, &mut virtual_secs, &net);
                    break;
                }
                ClaimOutcome::Conflict => {
                    absorb(&mut tally, &mut virtual_secs, &net);
                    nela_obs::add(nela_obs::counter::CLAIM_RETRIES, 1);
                    continue;
                }
                ClaimOutcome::HostMissing => {
                    absorb(&mut tally, &mut virtual_secs, &net);
                    outcome = Err(RequestError::HostNotClustered);
                    break;
                }
            }
        }
        if used_network {
            net_state.acc.absorb(&tally, virtual_secs);
            nela_obs::observe(nela_obs::stage::NET_RETRANS_PER_REQ, tally.retransmits);
            nela_obs::observe(nela_obs::stage::NET_TIMEOUTS_PER_REQ, tally.timeouts);
            nela_obs::observe(
                nela_obs::stage::NET_VIRTUAL_TIME,
                (virtual_secs * 1e9) as u64,
            );
        }
        outcome
    }

    /// The fully-reused outcome of a netsim request (both phases skipped).
    fn finish_sharded_net_reused(
        &self,
        host: UserId,
        members: &[UserId],
        region: Option<Rect>,
    ) -> Result<CloakingResult, RequestError> {
        // invariant: callers pass `region = Some(..)` only; the Option is
        // kept so the reuse branch reads like `finish_sharded`'s.
        let region = region.ok_or(RequestError::HostNotClustered)?;
        Ok(CloakingResult {
            host,
            region,
            cluster_size: members.len(),
            clustering_messages: 0,
            bounding_messages: 0,
            bounding_rounds: 0,
            required_k: self.required_k_of(members),
            reused: true,
            bounding_cpu: Duration::ZERO,
        })
    }

    /// Phase 2 over the network for a claimed cluster id, publishing the
    /// region first-writer-wins exactly like [`CloakingEngine::finish_sharded`].
    fn finish_sharded_net(
        &self,
        sharded: &ShardedRegistry,
        host: UserId,
        id: ClusterId,
        members: &[UserId],
        clustering_messages: u64,
        net: &mut Network,
    ) -> Result<CloakingResult, RequestError> {
        let cluster_size = members.len();
        let required_k = self.required_k_of(members);
        let pairs: Vec<(UserId, Point)> = members
            .iter()
            .map(|&m| (m, self.system.points[m as usize]))
            .collect();
        let host_point = self.system.points[host as usize];
        let started = Instant::now();
        let bbox = self.bound_net(net, host, &pairs, host_point, cluster_size)?;
        let bounding_cpu = started.elapsed();
        nela_obs::observe_duration(nela_obs::stage::BOUNDING, bounding_cpu);
        sharded.set_region(id, bbox.rect);
        Ok(CloakingResult {
            host,
            region: bbox.rect,
            cluster_size,
            clustering_messages,
            bounding_messages: bbox.messages,
            bounding_rounds: bbox.rounds,
            required_k,
            reused: false,
            bounding_cpu,
        })
    }
}

/// Decorrelates the per-request network seed from the session seed
/// (splitmix64 finalizer): adjacent hosts must not produce correlated loss
/// patterns, and the mix keeps outcomes a pure function of `(seed, host)`.
fn mix_seed(seed: u64, host: UserId) -> u64 {
    let mut z = seed ^ (host as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A long-lived concurrent cloaking session over the sharded registry — the
/// engine glue for service front-ends (`nela-serve`) that admit requests one
/// at a time from a worker pool instead of in pre-assembled batches.
///
/// [`CloakingEngine::request_many_sharded`] owns the whole batch: it spawns
/// the workers, partitions the hosts, and folds the registry back when the
/// batch ends. A serving loop inverts that control flow — *its* workers pull
/// requests off a queue for as long as the service runs — so the session
/// exposes the same lock-free optimistic path ([`EngineSession::request`]
/// takes `&self` and is safe to call from any number of threads) while the
/// caller decides threading and lifetime. [`EngineSession::finish`] returns
/// the engine with every cluster claimed during the session folded back into
/// its registry.
///
/// With one calling thread the session is exactly the serial `request` loop,
/// result for result — the determinism contract the replay tests pin.
pub struct EngineSession<'a> {
    engine: CloakingEngine<'a>,
    sharded: ShardedRegistry,
    /// When set, every request's two protocol phases run over the simulated
    /// network instead of in-memory structures (see
    /// [`EngineSession::with_network`]).
    net: Option<NetState>,
}

/// Session-wide network state for netsim-backed serving: a validated
/// template [`Network`] cloned (re-seeded) per request, plus the shared
/// accumulator the per-request tallies drain into.
struct NetState {
    template: Network,
    /// The session-level seed requests are mixed against ([`mix_seed`]).
    seed: u64,
    acc: NetAccumulator,
}

/// Lock-free tally of network activity across a whole session. Workers add
/// their per-request [`NetworkStats`] here once per request; relaxed
/// ordering suffices because the fields are independent monotone counters
/// read only after the workers join.
#[derive(Default)]
struct NetAccumulator {
    transmissions: AtomicU64,
    rpcs_ok: AtomicU64,
    rpcs_failed: AtomicU64,
    lost: AtomicU64,
    retransmits: AtomicU64,
    timeouts: AtomicU64,
    virtual_ns: AtomicU64,
}

impl NetAccumulator {
    fn absorb(&self, tally: &NetworkStats, virtual_secs: f64) {
        self.transmissions
            .fetch_add(tally.transmissions, Ordering::Relaxed);
        self.rpcs_ok.fetch_add(tally.rpcs_ok, Ordering::Relaxed);
        self.rpcs_failed
            .fetch_add(tally.rpcs_failed, Ordering::Relaxed);
        self.lost.fetch_add(tally.lost, Ordering::Relaxed);
        self.retransmits
            .fetch_add(tally.retransmits, Ordering::Relaxed);
        self.timeouts.fetch_add(tally.timeouts, Ordering::Relaxed);
        self.virtual_ns
            .fetch_add((virtual_secs * 1e9) as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> SessionNetStats {
        SessionNetStats {
            transmissions: self.transmissions.load(Ordering::Relaxed),
            rpcs_ok: self.rpcs_ok.load(Ordering::Relaxed),
            rpcs_failed: self.rpcs_failed.load(Ordering::Relaxed),
            lost: self.lost.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            virtual_s: self.virtual_ns.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }
}

/// Aggregate network activity of a netsim-backed session — the sum of every
/// request's per-request [`NetworkStats`] (reuse fast-path requests
/// contribute nothing: they never touch the radio).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SessionNetStats {
    /// Transmissions put on the air (requests + replies, lost included).
    pub transmissions: u64,
    /// Completed request/reply exchanges.
    pub rpcs_ok: u64,
    /// RPCs abandoned after the full retry budget.
    pub rpcs_failed: u64,
    /// Transmissions that were lost.
    pub lost: u64,
    /// RPC attempts beyond the first.
    pub retransmits: u64,
    /// Timeouts charged for lost transmissions.
    pub timeouts: u64,
    /// Total simulated seconds requests spent on the radio.
    pub virtual_s: f64,
}

impl<'a> CloakingEngine<'a> {
    /// Opens a concurrent serving session with `shards_per_axis`² grid
    /// shards (see [`auto_shard_axis`] for a worker-count-derived choice),
    /// consuming the engine; its registry seeds the session.
    ///
    /// # Panics
    /// Panics unless the engine runs [`ClusteringAlgo::TConnDistributed`] —
    /// the centralized, hilbASR, and kNN modes have inherently global setup
    /// and no lock-free request path.
    pub fn into_session(mut self, shards_per_axis: usize) -> EngineSession<'a> {
        assert_eq!(
            self.clustering,
            ClusteringAlgo::TConnDistributed,
            "EngineSession requires the distributed clustering algorithm"
        );
        let base = std::mem::replace(&mut self.registry, ClusterRegistry::new(0));
        let sharded = ShardedRegistry::new(base, &self.system.points, shards_per_axis);
        EngineSession {
            engine: self,
            sharded,
            net: None,
        }
    }
}

impl<'a> EngineSession<'a> {
    /// The system this session serves.
    pub fn system(&self) -> &'a System {
        self.engine.system
    }

    /// Routes every subsequent request's protocol phases through a
    /// simulated network built from `cfg`: phase-1 adjacency fetches and
    /// phase-2 verification rounds each become RPCs subject to the config's
    /// loss, latency, and retry budget. Per-request RPC retransmit/timeout
    /// counts flow into the `net.request.*` stage histograms, and the
    /// session-wide totals are readable via [`EngineSession::net_stats`].
    ///
    /// Determinism: each request's network is seeded from `(cfg.seed,
    /// host)`, so at a fixed config seed the outcome of every request is
    /// independent of worker count and scheduling — replay-stable.
    ///
    /// # Errors
    /// Rejects an invalid network config (same rules as
    /// [`NetworkConfig::validate`]) before any request runs.
    pub fn with_network(mut self, cfg: NetworkConfig) -> Result<Self, ConfigError> {
        let template = Network::new(cfg)?;
        self.net = Some(NetState {
            template,
            seed: cfg.seed,
            acc: NetAccumulator::default(),
        });
        Ok(self)
    }

    /// Aggregate network activity so far, or `None` for in-process
    /// sessions. Safe to call while workers are still serving (the totals
    /// are monotone counters), but meant for after they join.
    pub fn net_stats(&self) -> Option<SessionNetStats> {
        self.net.as_ref().map(|n| n.acc.snapshot())
    }

    /// Serves one cloaking request. Thread-safe: membership probes are
    /// lock-free atomic reads, clustering and bounding run with no locks
    /// held, and only the claim itself takes the (few) shard locks the
    /// produced clusters touch.
    ///
    /// # Errors
    /// The same failures as [`CloakingEngine::request`], plus
    /// [`RequestError::Contention`] when rival requests kept claiming
    /// members of every computed cluster, plus — on netsim-backed sessions
    /// — clustering/bounding failures caused by exhausted RPC retries.
    pub fn request(&self, host: UserId) -> Result<CloakingResult, RequestError> {
        let result = match &self.net {
            None => self.engine.serve_sharded(&self.sharded, host),
            Some(net) => REQUEST_SCRATCH.with(|scratch| {
                let mut scratch = scratch.borrow_mut();
                self.engine
                    .serve_sharded_net(&self.sharded, host, net, &mut scratch)
            }),
        };
        record_outcome(&result);
        result
    }

    /// Ends the session, folding all claimed clusters back into the
    /// engine's registry (audits, reciprocity checks, carry-over).
    pub fn finish(self) -> CloakingEngine<'a> {
        let mut engine = self.engine;
        engine.registry = self.sharded.into_registry();
        engine
    }
}

/// What one serving session leaves behind for the next: its folded-back
/// registry plus the exact positions it clustered against. The positions
/// are the audit baseline — [`CloakingEngine::resume_session`] re-publishes
/// a carried cluster only if **every** member still sits where the
/// checkpoint recorded it, so a stale region can never serve a moved user.
#[derive(Clone, Debug)]
pub struct SessionCheckpoint {
    registry: ClusterRegistry,
    positions: Vec<Point>,
}

impl SessionCheckpoint {
    /// Number of users the checkpointed session served.
    pub fn population(&self) -> usize {
        self.positions.len()
    }

    /// Number of live (non-tombstone) clusters in the checkpoint.
    pub fn active_clusters(&self) -> usize {
        self.registry.active_cluster_count()
    }
}

/// Outcome of the epoch audit a resumed session runs over its checkpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CarryOver {
    /// Clusters re-published into the new session (all members unmoved).
    pub carried: usize,
    /// Clusters dropped by the audit (a member moved, or the population
    /// changed shape entirely).
    pub dropped: usize,
    /// Users covered by the carried clusters — they will hit the region
    /// reuse fast path on their first request of the new session.
    pub carried_users: usize,
}

impl<'a> CloakingEngine<'a> {
    /// Consumes the engine into a [`SessionCheckpoint`] carrying its
    /// registry and the positions it was built over. Typically called on
    /// the engine returned by [`EngineSession::finish`].
    pub fn checkpoint(self) -> SessionCheckpoint {
        SessionCheckpoint {
            positions: self.system.points.clone(),
            registry: self.registry,
        }
    }

    /// Opens a serving session that carries forward the previous session's
    /// still-valid clusters. Each active checkpoint cluster is audited
    /// against the new system's positions: if any member moved (bitwise
    /// position inequality — mobility epochs re-sample coordinates, so an
    /// unmoved user is bit-identical), the cluster is invalidated before
    /// the session opens. A checkpoint whose population does not match the
    /// system is unusable and degrades to a cold start.
    ///
    /// Returns the session plus the audit's [`CarryOver`] accounting.
    ///
    /// # Panics
    /// Panics unless `clustering` is [`ClusteringAlgo::TConnDistributed`]
    /// (sessions have no other request path).
    pub fn resume_session(
        system: &'a System,
        clustering: ClusteringAlgo,
        bounding: BoundingAlgo,
        checkpoint: SessionCheckpoint,
        shards_per_axis: usize,
    ) -> (EngineSession<'a>, CarryOver) {
        if checkpoint.positions.len() != system.points.len() {
            let dropped = checkpoint.registry.active_cluster_count();
            let session =
                CloakingEngine::new(system, clustering, bounding).into_session(shards_per_axis);
            return (
                session,
                CarryOver {
                    carried: 0,
                    dropped,
                    carried_users: 0,
                },
            );
        }
        let mut registry = checkpoint.registry;
        let moved = |u: UserId| {
            let u = u as usize;
            // Bitwise, not epsilon: an unmoved user's coordinates are the
            // exact same floats; any perturbation must fail the audit.
            checkpoint.positions[u].x != system.points[u].x
                || checkpoint.positions[u].y != system.points[u].y
        };
        let stale: Vec<ClusterId> = registry
            .active_clusters()
            .filter(|(_, rc)| rc.cluster.members.iter().any(|&m| moved(m)))
            .map(|(id, _)| id)
            .collect();
        let dropped = stale.len();
        for id in stale {
            registry.invalidate(id);
        }
        let mut carry = CarryOver {
            carried: 0,
            dropped,
            carried_users: 0,
        };
        for (_, rc) in registry.active_clusters() {
            carry.carried += 1;
            carry.carried_users += rc.cluster.members.len();
        }
        let session = CloakingEngine::with_registry(system, clustering, bounding, registry)
            .into_session(shards_per_axis);
        (session, carry)
    }
}

/// Tallies one request outcome into the global obs counters. Called once
/// per request: inside [`CloakingEngine::request`] for serial paths, and at
/// the batch worker call sites for the concurrent paths (which bypass
/// `request`).
fn record_outcome(result: &Result<CloakingResult, RequestError>) {
    if !nela_obs::enabled() {
        return;
    }
    match result {
        Ok(r) => {
            nela_obs::add(nela_obs::counter::REQ_SERVED, 1);
            if r.reused {
                nela_obs::add(nela_obs::counter::REQ_REUSED, 1);
            }
        }
        Err(e) => {
            nela_obs::add(nela_obs::counter::REQ_FAILED, 1);
            if matches!(e, RequestError::Contention { .. }) {
                nela_obs::add(nela_obs::counter::REQ_CONTENTION, 1);
            }
        }
    }
}

/// Shards-per-axis chosen for a worker count: about four shards per worker
/// (so rival claims rarely meet in one shard), laid out on a square grid —
/// axis = ⌈√(4·threads)⌉, clamped to \[1, 64\] so shards never get smaller
/// than a few radio ranges on the unit square.
pub fn auto_shard_axis(threads: usize) -> usize {
    (((4 * threads.max(1)) as f64).sqrt().ceil() as usize).clamp(1, 64)
}

/// Shards-per-axis for a user-pinned *total* shard count ([`Params::shards`]):
/// the smallest square grid with at least that many shards.
pub fn shard_axis_for_total(shards: usize) -> usize {
    ((shards.max(1) as f64).sqrt().ceil() as usize).clamp(1, 64)
}

/// Degenerate per-direction runs for the optimal algorithm (kept so
/// [`BboxOutcome`] stays uniform across algorithms).
fn optimal_runs(members: &[Point], rect: Rect) -> [nela_bounding::protocol::BoundingRun; 4] {
    let one = |bound: f64| nela_bounding::protocol::BoundingRun {
        bound,
        rounds: 1,
        messages: members.len() as u64 / 4, // OPT's single message covers all four directions
        records: Vec::new(),
        bounds: vec![bound],
    };
    [
        one(rect.max_x),
        one(-rect.min_x),
        one(rect.max_y),
        one(-rect.min_y),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nela_cluster::distributed::distributed_k_clustering;

    fn small_system() -> System {
        System::build(&Params {
            k: 5,
            ..Params::scaled(2_000)
        })
    }

    /// First host in the sequence that can actually reach k users (random
    /// hosts may sit in underfilled components — paper Fig. 5).
    fn servable_host(s: &System, seed: u64) -> UserId {
        s.host_sequence(300, seed)
            .into_iter()
            .find(|&h| distributed_k_clustering(&s.wpg, h, s.params.k, &|_| false).is_ok())
            .unwrap_or_else(|| {
                panic!(
                    "no servable host in 300-host sample (n={}, k={}, seed={seed})",
                    s.points.len(),
                    s.params.k
                )
            })
    }

    #[test]
    fn request_produces_covering_region() {
        let s = small_system();
        let mut e = CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure);
        let host = servable_host(&s, 1);
        let r = e.request(host).unwrap();
        assert!(r.cluster_size >= 5);
        assert!(r.region.contains(&s.points[host as usize]));
        // Every cluster member is inside the region.
        let rc = e.registry().cluster_of(host).unwrap();
        for &m in &rc.cluster.members {
            assert!(r.region.contains(&s.points[m as usize]));
        }
        assert!(r.clustering_messages > 0);
        assert!(r.bounding_messages > 0);
    }

    #[test]
    fn second_request_by_cluster_member_reuses() {
        let s = small_system();
        let mut e = CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure);
        let host = servable_host(&s, 2);
        let first = e.request(host).unwrap();
        let peer = e
            .registry()
            .cluster_of(host)
            .unwrap()
            .cluster
            .members
            .iter()
            .copied()
            .find(|&m| m != host)
            .unwrap();
        let second = e.request(peer).unwrap();
        assert!(second.reused);
        assert_eq!(second.region, first.region);
        assert_eq!(second.clustering_messages + second.bounding_messages, 0);
    }

    #[test]
    fn centralized_pays_population_once() {
        let s = small_system();
        let mut e =
            CloakingEngine::new(&s, ClusteringAlgo::TConnCentralized, BoundingAlgo::Optimal);
        // Some hosts may be unservable; the N-message setup cost must be
        // attributed exactly once across the successful requests.
        let mut total = 0u64;
        let mut successes = 0;
        for h in s.host_sequence(30, 3) {
            if let Ok(r) = e.request(h) {
                total += r.clustering_messages;
                successes += 1;
            }
        }
        assert!(successes > 1);
        assert_eq!(total, s.points.len() as u64);
    }

    #[test]
    fn knn_cluster_is_exactly_k() {
        let s = small_system();
        let mut e =
            CloakingEngine::new(&s, ClusteringAlgo::Knn(TieBreak::Id), BoundingAlgo::Optimal);
        let host = servable_host(&s, 4);
        let r = e.request(host).unwrap();
        assert_eq!(r.cluster_size, 5);
    }

    #[test]
    fn optimal_region_is_subset_of_secure_region() {
        let s = small_system();
        let host = servable_host(&s, 5);
        let mut opt =
            CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Optimal);
        let mut sec =
            CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure);
        let ro = opt.request(host).unwrap();
        let rs = sec.request(host).unwrap();
        assert_eq!(ro.cluster_size, rs.cluster_size, "same phase 1");
        assert!(rs.region.contains_rect(&ro.region));
        assert!(rs.region.area() >= ro.region.area());
    }

    #[test]
    fn linear_bound_tighter_than_exponential() {
        let s = small_system();
        let host = servable_host(&s, 6);
        let mut lin =
            CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Linear);
        let mut exp = CloakingEngine::new(
            &s,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Exponential,
        );
        let rl = lin.request(host).unwrap();
        let re = exp.request(host).unwrap();
        assert!(rl.region.area() <= re.region.area());
        assert!(rl.bounding_messages >= re.bounding_messages);
    }

    #[test]
    fn hilb_asr_serves_everyone_and_is_tight_where_both_serve() {
        // The exposure baseline buckets the whole population — it never
        // fails — and on a uniform population its exact-coordinate ordering
        // yields tighter regions than proximity-only clustering. (On skewed
        // street data its fixed buckets straddle sparse gaps and can lose;
        // the exp_attack experiment shows both regimes.)
        let s = System::build(&Params {
            k: 5,
            distribution: nela_geo::SpatialDistribution::Uniform,
            // Uniform data has no dense streets: widen the radio range so
            // the expected in-range peer count stays ~10.
            delta: 0.04,
            ..Params::scaled(2_000)
        });
        let hosts = s.host_sequence(60, 8);
        let mut hilb = CloakingEngine::new(&s, ClusteringAlgo::HilbAsr, BoundingAlgo::Optimal);
        let mut tconn =
            CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Optimal);
        let mut hilb_area = 0.0;
        let mut tconn_area = 0.0;
        let mut both = 0;
        for &h in &hosts {
            let hr = hilb.request(h);
            assert!(hr.is_ok(), "hilbASR must serve every host");
            if let (Ok(a), Ok(b)) = (hr, tconn.request(h)) {
                hilb_area += a.region.area();
                tconn_area += b.region.area();
                both += 1;
            }
        }
        assert!(both > 20, "too few commonly served hosts");
        assert!(
            hilb_area < tconn_area,
            "on uniform data exact positions must win: {} vs {}",
            hilb_area / both as f64,
            tconn_area / both as f64
        );
    }

    #[test]
    fn session_equals_serial_loop_single_threaded() {
        let s = small_system();
        let hosts = s.host_sequence(60, 9);
        let mut serial =
            CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure);
        let looped: Vec<_> = hosts.iter().map(|&h| serial.request(h)).collect();
        for axis in [1usize, 3] {
            let session =
                CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure)
                    .into_session(axis);
            for (&h, expect) in hosts.iter().zip(&looped) {
                let got = session.request(h);
                match (expect, &got) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.region, b.region, "axis {axis}, host {h}");
                        assert_eq!(a.reused, b.reused, "axis {axis}, host {h}");
                    }
                    (Err(_), Err(_)) => {}
                    _ => panic!("session diverged from serial loop at host {h}, axis {axis}"),
                }
            }
            let engine = session.finish();
            assert_eq!(engine.registry().reciprocity_violation(), None);
        }
    }

    #[test]
    fn session_serves_concurrently_and_folds_back() {
        let s = small_system();
        let hosts = s.host_sequence(80, 10);
        let session =
            CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure)
                .into_session(auto_shard_axis(4));
        let served: usize = std::thread::scope(|scope| {
            let session = &session;
            let handles: Vec<_> = hosts
                .chunks(hosts.len().div_ceil(4))
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .filter(|&&h| session.request(h).is_ok())
                            .count()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert!(served > 0, "concurrent session served nothing");
        let engine = session.finish();
        assert_eq!(engine.registry().reciprocity_violation(), None);
        assert!(engine.registry().active_cluster_count() > 0);
    }

    #[test]
    #[should_panic(expected = "distributed clustering")]
    fn session_rejects_non_distributed_algorithms() {
        let s = small_system();
        let _ = CloakingEngine::new(&s, ClusteringAlgo::TConnCentralized, BoundingAlgo::Secure)
            .into_session(2);
    }

    #[test]
    fn reciprocity_holds_through_workload() {
        let s = small_system();
        let mut e = CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure);
        for h in s.host_sequence(50, 7) {
            let _ = e.request(h);
        }
        assert_eq!(e.registry().reciprocity_violation(), None);
    }

    #[test]
    fn lossless_netsim_session_equals_in_process_session() {
        let s = small_system();
        let hosts = s.host_sequence(60, 11);
        let plain = CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure)
            .into_session(2);
        let simmed =
            CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure)
                .into_session(2)
                .with_network(NetworkConfig::default())
                .unwrap();
        for &h in &hosts {
            match (plain.request(h), simmed.request(h)) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.region, b.region, "host {h}");
                    assert_eq!(a.cluster_size, b.cluster_size, "host {h}");
                    assert_eq!(a.reused, b.reused, "host {h}");
                }
                (Err(_), Err(_)) => {}
                _ => panic!("netsim session diverged from in-process at host {h}"),
            }
        }
        let net = simmed.net_stats().unwrap();
        assert!(net.transmissions > 0, "no traffic recorded");
        assert_eq!(net.retransmits, 0, "lossless network retransmitted");
        assert_eq!(net.timeouts, 0);
        assert_eq!(net.rpcs_failed, 0);
        assert!(net.virtual_s > 0.0);
        assert!(plain.net_stats().is_none());
    }

    #[test]
    fn lossy_netsim_session_replays_identically() {
        let s = small_system();
        let hosts = s.host_sequence(60, 12);
        let cfg = NetworkConfig {
            loss: 0.3,
            max_retries: 2,
            seed: 42,
            ..NetworkConfig::default()
        };
        let run = || {
            let session =
                CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure)
                    .into_session(2)
                    .with_network(cfg)
                    .unwrap();
            let results: Vec<_> = hosts
                .iter()
                .map(|&h| session.request(h).map(|r| (r.region, r.reused)))
                .collect();
            (results, session.net_stats().unwrap())
        };
        let (a, stats_a) = run();
        let (b, stats_b) = run();
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (Ok(p), Ok(q)) => assert_eq!(p, q),
                (Err(_), Err(_)) => {}
                _ => panic!("lossy replay diverged"),
            }
        }
        assert_eq!(stats_a, stats_b, "network accounting diverged on replay");
        assert!(stats_a.retransmits > 0, "30% loss produced no retransmits");
        assert!(stats_a.timeouts > 0);
    }

    #[test]
    fn checkpoint_resume_carries_unmoved_clusters() {
        let s = small_system();
        let hosts = s.host_sequence(40, 13);
        let session =
            CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure)
                .into_session(2);
        for &h in &hosts {
            let _ = session.request(h);
        }
        let checkpoint = session.finish().checkpoint();
        let active = checkpoint.active_clusters();
        assert!(active > 0, "workload registered no clusters");

        // Nothing moved: every cluster survives the audit, and a member of
        // a carried cluster reuses its region on the first request.
        let (resumed, carry) = CloakingEngine::resume_session(
            &s,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Secure,
            checkpoint.clone(),
            2,
        );
        assert_eq!(carry.carried, active);
        assert_eq!(carry.dropped, 0);
        assert!(carry.carried_users > 0);
        let member = hosts
            .iter()
            .copied()
            .find(|&h| resumed.request(h).map(|r| r.reused).unwrap_or(false))
            .expect("no carried member hit the reuse path");
        let _ = member;

        // Move one member of one carried cluster: exactly that cluster is
        // dropped, the rest still carry. (The reuse probes above may have
        // registered new clusters, so recount before the second resume.)
        let mut moved = s.clone();
        let engine = resumed.finish();
        let active2 = engine.registry().active_cluster_count();
        let victim = engine
            .registry()
            .active_clusters()
            .next()
            .map(|(_, rc)| rc.cluster.members[0])
            .unwrap();
        moved.points[victim as usize].x += 1e-9;
        let (_, carry2) = CloakingEngine::resume_session(
            &moved,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Secure,
            engine.checkpoint(),
            2,
        );
        assert_eq!(carry2.dropped, 1, "exactly the victim's cluster drops");
        assert_eq!(carry2.carried, active2 - 1);
    }

    #[test]
    fn resume_with_zero_survivors_serves_like_cold() {
        let s = small_system();
        let hosts = s.host_sequence(40, 14);
        let warm = CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure)
            .into_session(2);
        for &h in &hosts {
            let _ = warm.request(h);
        }
        let checkpoint = warm.finish().checkpoint();

        // Every user moved: the audit drops everything...
        let mut moved = s.clone();
        for p in &mut moved.points {
            p.x = (p.x + 0.25) % 1.0;
        }
        let (resumed, carry) = CloakingEngine::resume_session(
            &moved,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Secure,
            checkpoint,
            2,
        );
        assert_eq!(carry.carried, 0);
        assert_eq!(carry.carried_users, 0);
        assert!(carry.dropped > 0);

        // ...and the resumed session serves exactly like a cold one.
        let cold = CloakingEngine::new(
            &moved,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Secure,
        )
        .into_session(2);
        for &h in &hosts {
            match (cold.request(h), resumed.request(h)) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.region, b.region, "host {h}");
                    assert_eq!(a.reused, b.reused, "host {h}");
                }
                (Err(_), Err(_)) => {}
                _ => panic!("zero-survivor resume diverged from cold at host {h}"),
            }
        }
    }

    #[test]
    fn resume_with_mismatched_population_degrades_to_cold_start() {
        let s = small_system();
        let session =
            CloakingEngine::new(&s, ClusteringAlgo::TConnDistributed, BoundingAlgo::Secure)
                .into_session(2);
        let host = servable_host(&s, 15);
        session.request(host).unwrap();
        let checkpoint = session.finish().checkpoint();
        let other = System::build(&Params {
            k: 5,
            ..Params::scaled(1_000)
        });
        let (_, carry) = CloakingEngine::resume_session(
            &other,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Secure,
            checkpoint,
            2,
        );
        assert_eq!(carry.carried, 0);
        assert!(carry.dropped > 0);
    }
}
