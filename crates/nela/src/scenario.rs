//! Adversary & heterogeneity scenario matrix with machine-checked privacy
//! verdicts.
//!
//! The paper's evaluation assumes a uniform anonymity level `k` and
//! semi-honest peers. This module stress-tests the pipeline outside those
//! assumptions along three axes:
//!
//! - **k heterogeneity** — every user shares `Params::k`, or each carries a
//!   personalized `k_i` ([`personalized_k_levels`]) and clusters must honor
//!   the strictest member.
//! - **adversary** — honest peers, a coalition of `c` semi-honest colluders
//!   pooling bounding transcripts, `l` actively lying peers (agree-early),
//!   or peers that crash mid-bounding at a chosen round.
//! - **geography** — a uniform population, or the extreme rush-hour skew of
//!   [`SpatialDistribution::rush_hour`].
//!
//! Each cell of the matrix runs a full two-phase workload (distributed
//! clustering with cluster-isolation bookkeeping, then four directional
//! secure-bounding runs per cluster) and folds every request into a
//! [`PrivacyVerdict`]: k-anonymity audited against ground truth, transcript
//! leak widths against a floor, coalition knowledge against the
//! per-transcript bound, and crash recovery against the typed-degrade
//! contract. [`CellOutcome::passed`] applies the expectation appropriate to
//! the cell's adversary — a lying peer is *allowed* to shrink the box out
//! from under itself, but truthful members must stay covered; a crash must
//! end in a served-and-audited region over the survivors or a typed
//! degrade, never a panic or a silently wrong box.

use crate::params::Params;
use crate::system::System;
use nela_bounding::nbound::SecurePolicy;
use nela_bounding::{
    collusion_leak_report, leak_report, progressive_upper_bound_resilient,
    progressive_upper_bound_with, AreaCost, BoundingError, BoundingRun, CrashingValues,
    IncrementPolicy, LieMode, LocalValues, LyingValues, Uniform,
};
use nela_cluster::distributed::distributed_k_clustering_policy;
use nela_cluster::KPolicy;
use nela_geo::{Point, Rect, SpatialDistribution, UserId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// Anonymity-requirement axis of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum KAxis {
    /// Every user requires the global `Params::k` (the paper's setting).
    Uniform,
    /// Each user carries its own `k_i` from [`personalized_k_levels`].
    Personalized,
}

/// Geography axis of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum GeoAxis {
    /// Independent uniform positions.
    Uniform,
    /// Extreme skew: dense downtown hotspots over a sparse background.
    RushHour,
}

/// Adversary axis of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Adversary {
    /// Semi-honest peers, no collusion — the paper's threat model.
    Honest,
    /// `c` semi-honest peers per cluster pool their bounding transcripts
    /// after the fact (they still answer honestly).
    Colluders { c: usize },
    /// `l` peers per cluster answer "yes" to every verification, agreeing
    /// before their true value is covered.
    Liars { l: usize },
    /// `peers` peers per cluster stop answering from bounding round
    /// `round` on; the protocol must recover over the survivors or degrade
    /// with a typed error.
    Crash { peers: usize, round: usize },
}

/// One cell of the matrix: the axes plus workload knobs.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioSpec {
    /// Human-readable cell label (stable across runs).
    pub name: String,
    /// Anonymity-requirement axis.
    pub k_axis: KAxis,
    /// Geography axis.
    pub geo: GeoAxis,
    /// Adversary axis.
    pub adversary: Adversary,
    /// Number of host requests to drive through the cell.
    pub requests: usize,
    /// Minimum tolerated transcript interval width: any party pinning any
    /// user into an interval of width ≤ this floor fails the cell. `0.0`
    /// asserts "no exact coordinate disclosure, ever".
    pub leak_floor: f64,
    /// Seed for host selection, personalized levels, and role assignment.
    pub seed: u64,
}

impl ScenarioSpec {
    /// Builds a spec with a derived stable name.
    pub fn new(
        k_axis: KAxis,
        geo: GeoAxis,
        adversary: Adversary,
        requests: usize,
        leak_floor: f64,
        seed: u64,
    ) -> ScenarioSpec {
        let k_label = match k_axis {
            KAxis::Uniform => "uniform-k".to_string(),
            KAxis::Personalized => "personalized-k".to_string(),
        };
        let geo_label = match geo {
            GeoAxis::Uniform => "uniform-geo",
            GeoAxis::RushHour => "rush-hour",
        };
        let adv_label = match adversary {
            Adversary::Honest => "honest".to_string(),
            Adversary::Colluders { c } => format!("colluders-{c}"),
            Adversary::Liars { l } => format!("liars-{l}"),
            Adversary::Crash { peers, round } => format!("crash-{peers}@r{round}"),
        };
        ScenarioSpec {
            name: format!("{geo_label}/{k_label}/{adv_label}"),
            k_axis,
            geo,
            adversary,
            requests,
            leak_floor,
            seed,
        }
    }
}

/// Machine-checked privacy assertions aggregated over every request of a
/// cell. Booleans start `true` and latch `false` on the first violation.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PrivacyVerdict {
    /// Requests driven through the cell.
    pub requests: usize,
    /// Requests that ended with a cloaked region (includes reuses).
    pub served: usize,
    /// Served requests answered from a previously bounded cluster region.
    pub reused: usize,
    /// Requests that degraded with a typed error (component too small,
    /// bounding failure, or crash recovery below the anonymity level).
    pub degraded: usize,
    /// Every served region contained at least the request's `required_k`
    /// ground-truth users and lay inside the service domain.
    pub k_anonymity_held: bool,
    /// Bounding transcripts named only cluster members — nobody outside
    /// the cluster ever answered (or was asked) a verification.
    pub no_non_member_exposure: bool,
    /// No per-user transcript interval was as narrow as the leak floor.
    pub leak_floor_held: bool,
    /// Every truthful, non-crashed member's true position lay inside the
    /// served region (liars may talk themselves out of coverage; that is
    /// their own loss, not a protocol failure).
    pub truthful_coverage: bool,
    /// No coalition pinned a victim tighter than the narrowest individual
    /// transcript interval of the same run — collusion pools knowledge but
    /// cannot mint new precision.
    pub collusion_bounded_by_transcript: bool,
    /// Crash recovery never surfaced a raw `Unreachable` and only served
    /// when the survivors still met the anonymity requirement.
    pub recovery_sound: bool,
    /// Narrowest finite per-user transcript interval seen anywhere in the
    /// cell (the cell's worst single-party leak; `INFINITY` if none).
    pub worst_leak_width: f64,
    /// Narrowest finite coalition interval over any victim (`INFINITY`
    /// when the cell has no colluders or no finite coalition interval).
    pub collusion_worst_width: f64,
}

impl PrivacyVerdict {
    fn fresh(requests: usize) -> PrivacyVerdict {
        PrivacyVerdict {
            requests,
            served: 0,
            reused: 0,
            degraded: 0,
            k_anonymity_held: true,
            no_non_member_exposure: true,
            leak_floor_held: true,
            truthful_coverage: true,
            collusion_bounded_by_transcript: true,
            recovery_sound: true,
            worst_leak_width: f64::INFINITY,
            collusion_worst_width: f64::INFINITY,
        }
    }
}

/// A finished cell: its spec, verdict, and the expectation-aware pass/fail.
#[derive(Debug, Clone, Serialize)]
pub struct CellOutcome {
    /// The cell that ran.
    pub spec: ScenarioSpec,
    /// Aggregated machine-checked assertions.
    pub verdict: PrivacyVerdict,
    /// Whether the verdict meets the expectation for the cell's adversary.
    pub passed: bool,
}

/// The pass criteria appropriate to each adversary. Every cell must serve
/// at least one request, never leak to a non-member, and keep typed-degrade
/// discipline; what else is *expected to survive* depends on who attacks:
/// liars are allowed to break their own k-anonymity (the box shrinks around
/// the truthful members), crashes are allowed to degrade requests, but
/// colluders must never beat the transcript bound and honest cells must be
/// clean on every axis.
fn expectation_met(adversary: Adversary, v: &PrivacyVerdict) -> bool {
    let base = v.served > 0 && v.no_non_member_exposure;
    match adversary {
        Adversary::Honest => base && v.k_anonymity_held && v.leak_floor_held && v.truthful_coverage,
        Adversary::Colluders { .. } => {
            base && v.k_anonymity_held && v.leak_floor_held && v.collusion_bounded_by_transcript
        }
        Adversary::Liars { .. } => base && v.truthful_coverage && v.leak_floor_held,
        Adversary::Crash { .. } => base && v.k_anonymity_held && v.recovery_sound,
    }
}

/// Personalized anonymity levels: a seeded three-tier mix around `base_k`
/// (roughly 60% at `base_k`, 25% at `⌈1.5·base_k⌉`, 15% at `2·base_k`),
/// modeling a population where most users accept the default and a privacy-
/// conscious minority demands more.
pub fn personalized_k_levels(n: usize, base_k: usize, seed: u64) -> Vec<usize> {
    let base_k = base_k.max(1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x4b4c_4556); // "KLEV"
    (0..n)
        .map(|_| {
            let r: f64 = rng.gen();
            if r < 0.60 {
                base_k
            } else if r < 0.85 {
                (base_k * 3).div_ceil(2)
            } else {
                base_k * 2
            }
        })
        .collect()
}

/// Builds the system for one geography cell (same density scaling as
/// [`Params::scaled`], distribution swapped per the axis).
pub fn scenario_system(geo: GeoAxis, n_users: usize, k: usize, seed: u64) -> System {
    let mut p = Params::scaled(n_users);
    p.k = k;
    p.seed = seed;
    p.distribution = match geo {
        GeoAxis::Uniform => SpatialDistribution::Uniform,
        GeoAxis::RushHour => SpatialDistribution::rush_hour(),
    };
    // `Params::scaled` sizes δ for the clustered California-like density; a
    // uniform population of the same size would be nearly edgeless under
    // it. Size δ so the expected number of in-range peers reaches the 2k
    // personalized tier with headroom (rush-hour cores are far denser —
    // there the interesting failure mode is the sparse periphery).
    let target_peers = (2 * k).max(8) as f64;
    p.delta = (target_peers / (n_users as f64 * std::f64::consts::PI)).sqrt();
    System::build(&p)
}

/// A cluster produced during a cell run, with its lazily-bounded region
/// (phase 2 runs on the first request from one of its members).
struct StoredCluster {
    members: Vec<UserId>,
    required_k: usize,
    region: Option<Rect>,
}

/// Runs one cell against a pre-built system (build it once per geography
/// with [`scenario_system`] and share it across the cells of that column).
pub fn run_scenario_on(system: &System, spec: &ScenarioSpec) -> CellOutcome {
    let n = system.points.len();
    let levels = match spec.k_axis {
        KAxis::Uniform => None,
        KAxis::Personalized => Some(personalized_k_levels(n, system.params.k, spec.seed)),
    };
    let kp = match &levels {
        None => KPolicy::Uniform(system.params.k),
        Some(ls) => KPolicy::PerUser(ls),
    };
    let hosts = system.host_sequence(spec.requests.min(n), spec.seed ^ 0x5343_454e); // "SCEN"

    let mut v = PrivacyVerdict::fresh(hosts.len());
    let mut assigned = vec![false; n];
    let mut cluster_of: Vec<Option<usize>> = vec![None; n];
    let mut clusters: Vec<StoredCluster> = Vec::new();

    for &host in &hosts {
        // Phase 1: cluster the host, or find the cluster a previous request
        // already placed it in (reciprocity: one region per cluster).
        let cid = match cluster_of[host as usize] {
            Some(cid) => cid,
            None => {
                let outcome = {
                    let removed = |u: UserId| assigned[u as usize];
                    distributed_k_clustering_policy(&system.wpg, host, kp, &removed)
                };
                match outcome {
                    Ok(out) => {
                        let mut host_cid = usize::MAX;
                        for c in out.all_clusters {
                            let cid = clusters.len();
                            for &m in &c.members {
                                assigned[m as usize] = true;
                                cluster_of[m as usize] = Some(cid);
                            }
                            if c.contains(host) {
                                host_cid = cid;
                            }
                            let required_k = c.required_k(kp);
                            clusters.push(StoredCluster {
                                members: c.members,
                                required_k,
                                region: None,
                            });
                        }
                        debug_assert_ne!(host_cid, usize::MAX, "host not in its own partition");
                        host_cid
                    }
                    Err(_) => {
                        // Typed degrade (component too small in the
                        // remaining WPG) — counted, never fatal.
                        v.degraded += 1;
                        continue;
                    }
                }
            }
        };
        let required_k = clusters[cid].required_k;
        if let Some(region) = clusters[cid].region {
            v.served += 1;
            v.reused += 1;
            audit_region(&mut v, system, &region, required_k);
            continue;
        }
        // Phase 2: four directional secure-bounding runs under the cell's
        // adversary, assembled into the cloaked rectangle.
        let members = clusters[cid].members.clone();
        match bound_cluster(system, spec, host, &members, required_k, &mut v) {
            Some(region) => {
                clusters[cid].region = Some(region);
                v.served += 1;
                audit_region(&mut v, system, &region, required_k);
            }
            None => v.degraded += 1,
        }
    }

    let passed = expectation_met(spec.adversary, &v);
    CellOutcome {
        spec: spec.clone(),
        verdict: v,
        passed,
    }
}

/// Audits one served region against ground truth.
fn audit_region(v: &mut PrivacyVerdict, system: &System, region: &Rect, required_k: usize) {
    let users_in = system.grid.count_in_rect(region);
    v.k_anonymity_held &= users_in >= required_k && Rect::UNIT.contains_rect(region);
}

/// Runs phase 2 for one cluster under the cell's adversary. Returns the
/// cloaked region, or `None` when the request must degrade (a typed
/// bounding failure, or crash recovery left fewer survivors than the
/// anonymity requirement).
fn bound_cluster(
    system: &System,
    spec: &ScenarioSpec,
    host: UserId,
    members: &[UserId],
    required_k: usize,
    v: &mut PrivacyVerdict,
) -> Option<Rect> {
    let p = &system.params;
    let pts: Vec<Point> = members.iter().map(|&m| system.points[m as usize]).collect();
    let cluster_size = members.len();
    let host_idx = members
        .binary_search(&host)
        .expect("host is a member of its own cluster");
    let host_pt = system.points[host as usize];

    // Same increment policy as the engine's BoundingAlgo::Secure.
    let span = p.uniform_span(cluster_size);
    let cr_1d = p.cr * p.n_users as f64;
    let mut policy_factory = || {
        Box::new(SecurePolicy::new(
            Uniform::new(span),
            AreaCost { cr: cr_1d },
            p.cb,
        )) as Box<dyn IncrementPolicy>
    };

    // Adversary roles: the lowest-indexed non-host members take them
    // (deterministic, so reruns replay bit-identically).
    let role_count = match spec.adversary {
        Adversary::Honest => 0,
        Adversary::Colluders { c } => c,
        Adversary::Liars { l } => l,
        Adversary::Crash { peers, .. } => peers,
    };
    let adversary_idx: Vec<usize> = (0..cluster_size)
        .filter(|&i| i != host_idx)
        .take(role_count)
        .collect();

    let xs: Vec<f64> = pts.iter().map(|pt| pt.x).collect();
    let ys: Vec<f64> = pts.iter().map(|pt| pt.y).collect();
    let neg_xs: Vec<f64> = xs.iter().map(|x| -x).collect();
    let neg_ys: Vec<f64> = ys.iter().map(|y| -y).collect();
    let domain = Rect::UNIT;
    let dirs: [(&[f64], f64, f64); 4] = [
        (&xs, host_pt.x, domain.min_x),
        (&neg_xs, -host_pt.x, -domain.max_x),
        (&ys, host_pt.y, domain.min_y),
        (&neg_ys, -host_pt.y, -domain.max_y),
    ];

    let mut dropped = vec![false; cluster_size];
    let mut runs: Vec<BoundingRun> = Vec::with_capacity(4);
    for (values, x0, domain_min) in dirs {
        let run = match spec.adversary {
            Adversary::Honest | Adversary::Colluders { .. } => {
                let mut t = LocalValues::new(values);
                progressive_upper_bound_with(&mut t, x0, domain_min, &mut *policy_factory())
            }
            Adversary::Liars { .. } => {
                let mut t = LyingValues::new(values, &adversary_idx, LieMode::AgreeEarly);
                progressive_upper_bound_with(&mut t, x0, domain_min, &mut *policy_factory())
            }
            Adversary::Crash { .. } => {
                let round = match spec.adversary {
                    Adversary::Crash { round, .. } => round,
                    _ => unreachable!(),
                };
                let mut t = CrashingValues::new(values, &adversary_idx, round);
                match progressive_upper_bound_resilient(&mut t, x0, domain_min, &mut policy_factory)
                {
                    Ok(out) => {
                        for &i in &out.dropped {
                            dropped[i] = true;
                        }
                        Ok(out.run)
                    }
                    Err(e) => Err(e),
                }
            }
        };
        match run {
            Ok(run) => runs.push(run),
            Err(BoundingError::Unreachable { .. }) => {
                // The resilient path must absorb crashes; a raw Unreachable
                // escaping it is a recovery bug the verdict pins.
                if matches!(spec.adversary, Adversary::Crash { .. }) {
                    v.recovery_sound = false;
                }
                return None;
            }
            Err(_) => return None,
        }
    }

    // No non-member exposure: every transcript record names a member, and
    // (crash drops aside) exactly the members.
    for run in &runs {
        v.no_non_member_exposure &= run.records.iter().all(|r| r.index < cluster_size);
        let expected = match spec.adversary {
            Adversary::Crash { .. } => run.records.len() <= cluster_size,
            _ => run.records.len() == cluster_size,
        };
        v.no_non_member_exposure &= expected;
    }

    // Leak accounting: no transcript interval at or below the floor, and
    // (for collusion cells) the coalition never beats the transcript bound.
    for run in &runs {
        let lr = leak_report(run, spec.leak_floor);
        if lr.min_width.is_finite() {
            v.worst_leak_width = v.worst_leak_width.min(lr.min_width);
        }
        v.leak_floor_held &= lr.min_width > spec.leak_floor;
        if matches!(spec.adversary, Adversary::Colluders { .. }) && !adversary_idx.is_empty() {
            let cr = collusion_leak_report(run, &adversary_idx, spec.leak_floor);
            if cr.worst_width.is_finite() {
                v.collusion_worst_width = v.collusion_worst_width.min(cr.worst_width);
            }
            v.collusion_bounded_by_transcript &= cr.worst_width >= lr.min_width - 1e-12;
        }
    }

    // Crash recovery below the anonymity requirement must degrade, not
    // serve a region that only covers too few survivors.
    if matches!(spec.adversary, Adversary::Crash { .. }) {
        let survivors = cluster_size - dropped.iter().filter(|&&d| d).count();
        if survivors < required_k {
            return None;
        }
    }

    let rect = Rect::new(
        (-runs[1].bound).clamp(domain.min_x, domain.max_x),
        (-runs[3].bound).clamp(domain.min_y, domain.max_y),
        runs[0].bound.clamp(domain.min_x, domain.max_x),
        runs[2].bound.clamp(domain.min_y, domain.max_y),
    );

    // Truthful, non-crashed members must be covered by the region they
    // agreed to share; liars and crashers forfeit their own coverage.
    let liars: &[usize] = match spec.adversary {
        Adversary::Liars { .. } => &adversary_idx,
        _ => &[],
    };
    for (i, pt) in pts.iter().enumerate() {
        if liars.contains(&i) || dropped[i] {
            continue;
        }
        v.truthful_coverage &= rect.contains(pt);
    }

    Some(rect)
}

/// Workload knobs shared by every cell of one matrix run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MatrixConfig {
    /// Population size per system.
    pub n_users: usize,
    /// Base anonymity level (uniform k; personalized tiers scale off it).
    pub k: usize,
    /// Host requests per cell.
    pub requests: usize,
    /// Coalition size for the collusion cells.
    pub colluders: usize,
    /// Lying peers per cluster for the liar cells.
    pub liars: usize,
    /// Crashing peers per cluster for the crash cells.
    pub crash_peers: usize,
    /// 1-based bounding round the crashers stop answering at.
    pub crash_round: usize,
    /// Leak floor for every cell (see [`ScenarioSpec::leak_floor`]).
    pub leak_floor: f64,
    /// Seed for systems, hosts, levels, and roles.
    pub seed: u64,
}

impl MatrixConfig {
    /// The benchmark configuration (`exp_robustness` Part D).
    pub fn bench() -> MatrixConfig {
        MatrixConfig {
            n_users: 6_000,
            k: 8,
            requests: 100,
            colluders: 3,
            liars: 1,
            crash_peers: 2,
            crash_round: 2,
            leak_floor: 0.0,
            seed: 42,
        }
    }

    /// A fast configuration for smoke tests and CI.
    pub fn smoke() -> MatrixConfig {
        MatrixConfig {
            n_users: 1_500,
            k: 5,
            requests: 30,
            colluders: 2,
            liars: 1,
            crash_peers: 1,
            crash_round: 2,
            leak_floor: 0.0,
            seed: 42,
        }
    }
}

/// Runs the full 2×2×4 matrix: {uniform, rush-hour} geography ×
/// {uniform, personalized} k × {honest, colluders, liars, crash}. Systems
/// are built once per geography and shared across their column's cells.
pub fn scenario_matrix(cfg: &MatrixConfig) -> Vec<CellOutcome> {
    let adversaries = [
        Adversary::Honest,
        Adversary::Colluders { c: cfg.colluders },
        Adversary::Liars { l: cfg.liars },
        Adversary::Crash {
            peers: cfg.crash_peers,
            round: cfg.crash_round,
        },
    ];
    let mut cells = Vec::with_capacity(16);
    for geo in [GeoAxis::Uniform, GeoAxis::RushHour] {
        let system = scenario_system(geo, cfg.n_users, cfg.k, cfg.seed);
        for k_axis in [KAxis::Uniform, KAxis::Personalized] {
            for adversary in adversaries {
                let spec = ScenarioSpec::new(
                    k_axis,
                    geo,
                    adversary,
                    cfg.requests,
                    cfg.leak_floor,
                    cfg.seed,
                );
                cells.push(run_scenario_on(&system, &spec));
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_system(geo: GeoAxis) -> System {
        scenario_system(geo, 1_200, 4, 7)
    }

    fn spec(adversary: Adversary) -> ScenarioSpec {
        ScenarioSpec::new(KAxis::Uniform, GeoAxis::Uniform, adversary, 20, 0.0, 7)
    }

    #[test]
    fn honest_uniform_cell_passes() {
        let system = small_system(GeoAxis::Uniform);
        let cell = run_scenario_on(&system, &spec(Adversary::Honest));
        assert!(cell.passed, "honest cell failed: {:?}", cell.verdict);
        assert!(cell.verdict.served > 0);
        assert!(cell.verdict.worst_leak_width > 0.0);
    }

    #[test]
    fn every_request_is_accounted_for() {
        let system = small_system(GeoAxis::Uniform);
        for adversary in [
            Adversary::Honest,
            Adversary::Colluders { c: 2 },
            Adversary::Liars { l: 1 },
            Adversary::Crash { peers: 1, round: 2 },
        ] {
            let cell = run_scenario_on(&system, &spec(adversary));
            let v = cell.verdict;
            assert_eq!(
                v.served + v.degraded,
                v.requests,
                "unaccounted requests under {adversary:?}"
            );
        }
    }

    #[test]
    fn colluders_never_beat_the_transcript_bound() {
        let system = small_system(GeoAxis::Uniform);
        let cell = run_scenario_on(&system, &spec(Adversary::Colluders { c: 2 }));
        assert!(cell.passed, "collusion cell failed: {:?}", cell.verdict);
        assert!(cell.verdict.collusion_bounded_by_transcript);
        // A coalition pools strictly less than the host knows, so its worst
        // interval is at least as wide as the cell's worst transcript leak.
        assert!(cell.verdict.collusion_worst_width >= cell.verdict.worst_leak_width - 1e-12);
    }

    #[test]
    fn liar_cell_keeps_truthful_members_covered() {
        let system = small_system(GeoAxis::Uniform);
        let cell = run_scenario_on(&system, &spec(Adversary::Liars { l: 1 }));
        assert!(cell.passed, "liar cell failed: {:?}", cell.verdict);
        assert!(cell.verdict.truthful_coverage);
    }

    #[test]
    fn crash_cell_recovers_or_degrades_typed() {
        let system = small_system(GeoAxis::Uniform);
        let cell = run_scenario_on(&system, &spec(Adversary::Crash { peers: 1, round: 1 }));
        assert!(cell.passed, "crash cell failed: {:?}", cell.verdict);
        assert!(cell.verdict.recovery_sound);
        assert!(cell.verdict.k_anonymity_held);
    }

    #[test]
    fn personalized_levels_are_deterministic_and_tiered() {
        let a = personalized_k_levels(5_000, 4, 9);
        let b = personalized_k_levels(5_000, 4, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|&k| k == 4 || k == 6 || k == 8));
        assert!(a.contains(&4) && a.contains(&6) && a.contains(&8));
        let c = personalized_k_levels(5_000, 4, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn personalized_cells_audit_against_the_strict_member() {
        let system = small_system(GeoAxis::Uniform);
        let spec = ScenarioSpec::new(
            KAxis::Personalized,
            GeoAxis::Uniform,
            Adversary::Honest,
            20,
            0.0,
            7,
        );
        let cell = run_scenario_on(&system, &spec);
        assert!(cell.passed, "personalized cell failed: {:?}", cell.verdict);
    }

    #[test]
    fn matrix_covers_all_sixteen_cells() {
        let cfg = MatrixConfig {
            n_users: 600,
            k: 3,
            requests: 8,
            colluders: 1,
            liars: 1,
            crash_peers: 1,
            crash_round: 1,
            leak_floor: 0.0,
            seed: 11,
        };
        let cells = scenario_matrix(&cfg);
        assert_eq!(cells.len(), 16);
        let mut names: Vec<&str> = cells.iter().map(|c| c.spec.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16, "cell names must be distinct");
        // Honest cells are the control group: they must pass everywhere.
        for cell in cells
            .iter()
            .filter(|c| c.spec.adversary == Adversary::Honest)
        {
            assert!(
                cell.passed,
                "honest cell {} failed: {:?}",
                cell.spec.name, cell.verdict
            );
        }
    }
}
