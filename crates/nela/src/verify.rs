//! End-to-end anonymity audits.
//!
//! The point of the whole pipeline is a verifiable guarantee: the cloaked
//! region contains at least k users (k-anonymity) and all of them share it
//! (reciprocity), while no party learned any member's coordinates beyond the
//! region itself. This module checks the observable parts of that guarantee
//! against the ground-truth population.

use crate::engine::CloakingResult;
use crate::system::System;
use serde::Serialize;

/// The audit verdict for one cloaking result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AuditReport {
    /// Users of the whole population inside the region (≥ `cluster_size`).
    pub users_in_region: usize,
    /// Region covers at least the request's anonymity requirement
    /// (`Params::k` uniform, or the max personalized `k_i` of the host's
    /// cluster members).
    pub k_satisfied: bool,
    /// The host's true position is inside the region (the request can be
    /// served at all).
    pub host_inside: bool,
    /// The region is inside the service domain (the unit square).
    pub within_domain: bool,
}

impl AuditReport {
    /// True when every audited property holds.
    pub fn passed(&self) -> bool {
        self.k_satisfied && self.host_inside && self.within_domain
    }
}

/// Audits a cloaking result against the system's ground truth. The
/// k-anonymity check uses the result's own `required_k`, so personalized
/// requests are audited against the strictest member they served.
pub fn audit_result(system: &System, result: &CloakingResult) -> AuditReport {
    let users_in_region = system.grid.count_in_rect(&result.region);
    AuditReport {
        users_in_region,
        k_satisfied: users_in_region >= result.required_k,
        host_inside: result.region.contains(&system.points[result.host as usize]),
        within_domain: nela_geo::Rect::UNIT.contains_rect(&result.region),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{BoundingAlgo, CloakingEngine, ClusteringAlgo};
    use crate::params::Params;

    #[test]
    fn workload_passes_audit() {
        let system = System::build(&Params {
            k: 5,
            ..Params::scaled(2_000)
        });
        let mut engine = CloakingEngine::new(
            &system,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Secure,
        );
        let mut audited = 0;
        for h in system.host_sequence(30, 17) {
            if let Ok(r) = engine.request(h) {
                let report = audit_result(&system, &r);
                assert!(report.passed(), "audit failed for host {h}: {report:?}");
                assert!(report.users_in_region >= r.cluster_size);
                audited += 1;
            }
        }
        assert!(audited > 0, "no request succeeded");
    }

    #[test]
    fn audit_detects_undersized_region() {
        let system = System::build(&Params {
            k: 50,
            ..Params::scaled(1_000)
        });
        // Forge a result with a degenerate region around one point.
        let p = system.points[0];
        let fake = CloakingResult {
            host: 0,
            region: nela_geo::Rect::new(p.x, p.y, p.x, p.y),
            cluster_size: 1,
            clustering_messages: 0,
            bounding_messages: 0,
            bounding_rounds: 0,
            required_k: system.params.k,
            reused: false,
            bounding_cpu: std::time::Duration::ZERO,
        };
        let report = audit_result(&system, &fake);
        assert!(!report.k_satisfied);
        assert!(report.host_inside);
    }
}
