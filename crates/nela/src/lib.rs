//! # NELA — Non-Exposure Location Anonymity
//!
//! A full implementation of *"Non-Exposure Location Anonymity"* (Hu & Xu,
//! ICDE 2009): location cloaking that never exposes any user's accurate
//! coordinates to any party — not to an anonymizer, and not to peer users.
//!
//! Cloaking runs in two phases over a *weighted proximity graph* (WPG) whose
//! edge weights are relative RSS ranks, not distances:
//!
//! 1. **Proximity minimum k-clustering** (`nela-cluster`): find ≥ k users
//!    including the host, minimizing the cluster's maximum edge weight,
//!    while preserving other users' future clusters (cluster-isolation).
//! 2. **Secure bounding** (`nela-bounding`): compute a rectangle covering
//!    all members through a progressive yes/no protocol with
//!    cost-model-optimal increments — no member ever states a coordinate.
//!
//! This crate ties the phases into an end-to-end engine:
//!
//! ```
//! use nela::{CloakingEngine, ClusteringAlgo, BoundingAlgo, Params, System};
//!
//! let system = System::build(&Params::scaled(2_000));
//! let mut engine = CloakingEngine::new(
//!     &system,
//!     ClusteringAlgo::TConnDistributed,
//!     BoundingAlgo::Secure,
//! );
//! // Some random hosts sit in underfilled regions and cannot reach k users;
//! // take the first servable one.
//! let result = system
//!     .host_sequence(100, 42)
//!     .into_iter()
//!     .find_map(|h| engine.request(h).ok())
//!     .expect("a servable host exists");
//! assert!(result.region.contains(&system.points[result.host as usize]));
//! ```
//!
//! The evaluation harness in `crates/bench` regenerates every figure of the
//! paper's §VI from this API; `EXPERIMENTS.md` records the outcomes.

pub mod attack;
pub mod engine;
pub mod metrics;
pub mod params;
pub mod scenario;
pub mod system;
pub mod verify;

pub use attack::{anonymity_of, center_attack, intersection_attack};
pub use engine::{
    auto_shard_axis, shard_axis_for_total, BoundingAlgo, CarryOver, CloakingEngine, CloakingResult,
    ClusteringAlgo, EngineSession, RequestError, SessionCheckpoint, SessionNetStats,
};
pub use metrics::{service_request_cost, WorkloadStats};
pub use params::Params;
pub use scenario::{
    personalized_k_levels, run_scenario_on, scenario_matrix, scenario_system, Adversary,
    CellOutcome, GeoAxis, KAxis, MatrixConfig, PrivacyVerdict, ScenarioSpec,
};
pub use system::System;
pub use verify::{audit_result, AuditReport};

// Re-export the sub-crates so downstream users need only one dependency.
pub use nela_bounding as bounding;
pub use nela_cluster as cluster;
pub use nela_geo as geo;
pub use nela_lbs as lbs;
pub use nela_netsim as netsim;
pub use nela_wpg as wpg;
