//! Steady-state allocation guard for the request paths.
//!
//! The cache-conscious refactor's contract is that a *warm* engine serves
//! region-reuse requests without touching the heap: the sharded path fills a
//! per-worker scratch (`lookup_into` + thread-local buffers) instead of
//! cloning member lists, and the serial path reads the registry in place.
//! This harness swaps in a counting [`GlobalAlloc`] and pins that contract —
//! a regression reintroducing a per-request `clone()`/`collect()` fails here
//! long before it shows up in a benchmark.
//!
//! The counter is process-global, so everything runs inside ONE `#[test]`
//! (the default harness would interleave allocations from sibling tests).

use nela::geo::UserId;
use nela::{BoundingAlgo, CloakingEngine, ClusteringAlgo, Params, System};
use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to the std system allocator unchanged;
// the counter is a relaxed atomic side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn warm_request_paths_do_not_allocate() {
    let system = System::build(&Params {
        k: 5,
        ..Params::scaled(2_000)
    });
    let hosts = system.host_sequence(200, 3);

    // --- Serial path: request_many(threads = 1) -------------------------
    let mut engine = CloakingEngine::new(
        &system,
        ClusteringAlgo::TConnDistributed,
        BoundingAlgo::Secure,
    );
    let warm = engine.request_many(&hosts, 1);
    // Hosts in underfilled components fail (and re-cluster) every time;
    // the steady-state contract only covers servable hosts.
    let steady: Vec<UserId> = hosts
        .iter()
        .zip(&warm)
        .filter(|(_, r)| r.is_ok())
        .map(|(&h, _)| h)
        .collect();
    assert!(
        steady.len() >= 50,
        "need a meaningful steady set, got {}",
        steady.len()
    );
    let repeat = engine.request_many(&steady, 1);
    assert!(repeat.iter().all(|r| r.as_ref().is_ok_and(|c| c.reused)));

    let before = allocs();
    let results = engine.request_many(&steady, 1);
    let batch_allocs = allocs() - before;
    assert!(results.iter().all(|r| r.as_ref().is_ok_and(|c| c.reused)));
    drop(results);
    // The whole batch may allocate its result Vec (exact-size collect) and
    // nothing else — i.e. zero allocations *per request*.
    assert!(
        batch_allocs <= 2,
        "serial warm batch of {} requests performed {batch_allocs} allocations \
         (expected at most the result Vec)",
        steady.len()
    );

    // --- Sharded path: EngineSession::request ---------------------------
    let engine = CloakingEngine::new(
        &system,
        ClusteringAlgo::TConnDistributed,
        BoundingAlgo::Secure,
    );
    let session = engine.into_session(2);
    // Warm-up claims every cluster, publishes its region, and grows this
    // thread's scratch to the largest member list.
    for &h in &steady {
        let r = session.request(h);
        assert!(r.is_ok(), "warm-up request failed for host {h}");
    }
    let before = allocs();
    let mut all_reused = true;
    for &h in &steady {
        match session.request(h) {
            Ok(c) => all_reused &= c.reused,
            Err(_) => all_reused = false,
        }
    }
    let session_allocs = allocs() - before;
    assert!(all_reused, "a warm session request missed the reuse path");
    assert_eq!(
        session_allocs,
        0,
        "warm EngineSession served {} requests with {session_allocs} allocations \
         (contract: zero per request)",
        steady.len()
    );
}
