//! Continuous cloaking workload driver.
//!
//! Ties the pieces into the pipeline the paper's static evaluation lacks:
//! every tick the population moves ([`crate::MobileWorld`]), the WPG is
//! maintained incrementally over the region-sharded grid, clusters touched
//! by a changed rank list are re-audited ([`crate::lifetime`]), and a
//! Poisson stream of cloaking requests is served through the standard
//! [`nela::CloakingEngine`] with the cluster registry carried across ticks.
//! The serving index is frozen from the maintained sharded grid
//! (`MobileWorld::grid_index`, a pure shard-CSR concatenation) — no
//! from-scratch `GridIndex` rebuild per tick. The run reports, per tick and
//! in aggregate:
//!
//! - **cluster-reuse rate** — how often a request is answered from a still-
//!   valid registered cluster (the paper's zero-cost ® path) despite motion,
//! - **incremental-vs-rebuild speedup** — wall-clock of the dirty-region WPG
//!   update against a from-scratch `WpgBuilder::build`,
//! - **anonymity validity** — whether served regions still cover ≥ k users
//!   at the positions current when they were served.

use crate::lifetime::invalidate_clusters_of_users;
use crate::model::MobilityConfig;
use crate::world::MobileWorld;
use nela::{BoundingAlgo, CloakingEngine, ClusteringAlgo, Params};
use nela_cluster::registry::ClusterRegistry;
use nela_geo::UserId;
use nela_wpg::{InverseDistanceRss, WpgBuilder};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::time::Instant;

/// Configuration of a continuous run.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Simulation length in ticks.
    pub ticks: usize,
    /// Mean cloaking requests per tick (Poisson).
    pub rate: f64,
    /// Seed for the request stream. Arrival counts and host choices draw
    /// from separate derived streams (`seed ^ tag`), so changing the rate
    /// does not reshuffle which users request.
    pub seed: u64,
    /// Also time a from-scratch WPG rebuild each tick for the speedup
    /// metric (doubles the per-tick cost; disable for long runs).
    pub measure_rebuild: bool,
    /// Worker threads for the incremental maintenance (dirty-set rescore).
    /// `1` (the default) rescores serially; higher counts produce a
    /// bit-identical graph in parallel, so the run stays deterministic for
    /// any value.
    pub threads: usize,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            ticks: 20,
            rate: 10.0,
            seed: 0xC0_FF_EE,
            measure_rebuild: true,
            threads: 1,
        }
    }
}

/// Per-tick measurements.
#[derive(Debug, Clone, Serialize)]
pub struct TickMetrics {
    pub tick: usize,
    /// Unique users that moved.
    pub moved: usize,
    /// Users re-scored by the incremental WPG update.
    pub dirty: usize,
    /// Users whose rank list actually changed.
    pub changed: usize,
    /// Nanoseconds for the incremental update (moves + graph snapshot).
    /// Nanosecond resolution keeps sub-microsecond ticks (common at small n)
    /// in the speedup statistics instead of flooring them to zero.
    pub incremental_ns: u64,
    /// Nanoseconds for the from-scratch rebuild (0 when not measured).
    pub rebuild_ns: u64,
    /// Clusters retired by the lifetime audit this tick.
    pub invalidated: usize,
    /// Users released by the audit.
    pub released: usize,
    /// Live clusters after the audit.
    pub active_clusters: usize,
    /// Requests that arrived.
    pub requests: usize,
    /// Requests answered (not failed).
    pub served: usize,
    /// Served requests answered from a registered cluster with zero
    /// clustering cost (the ® path).
    pub reused: usize,
    /// Requests whose host could not reach k users.
    pub failed: usize,
    /// Served requests whose region covers ≥ k users at current positions.
    pub valid_served: usize,
}

/// Aggregate of a whole run.
#[derive(Debug, Clone, Serialize)]
pub struct RunSummary {
    pub ticks: usize,
    pub population: usize,
    pub mobile_users: usize,
    pub requests: usize,
    pub served: usize,
    pub reused: usize,
    pub failed: usize,
    pub valid_served: usize,
    pub invalidated: usize,
    pub released: usize,
    /// Fraction of served requests answered by cluster reuse; `None` when
    /// nothing was served (a run with no served requests has no rate, it
    /// does not have a rate of zero).
    pub reuse_rate: Option<f64>,
    /// Fraction of served requests still covering ≥ k users when served;
    /// `None` when nothing was served.
    pub validity_rate: Option<f64>,
    /// Mean of per-tick `rebuild_ns / incremental_ns` over every measured
    /// tick; `None` when the rebuild was never measured.
    pub mean_speedup: Option<f64>,
    pub per_tick: Vec<TickMetrics>,
}

/// `num / den` as a rate, or `None` when the denominator is empty.
fn rate_of(num: usize, den: usize) -> Option<f64> {
    (den > 0).then(|| num as f64 / den as f64)
}

/// Stream tag for Poisson arrival counts.
const ARRIVAL_STREAM: u64 = 0x4152_5249_5645; // "ARRIVE"
/// Stream tag for request host choices.
const HOST_STREAM: u64 = 0x484f_5354; // "HOST"

/// Knuth's product method; exact for the small per-tick rates used here.
fn poisson(rng: &mut ChaCha8Rng, rate: f64) -> usize {
    assert!((0.0..700.0).contains(&rate), "rate out of supported range");
    let l = (-rate).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Runs the continuous workload. Fully deterministic for fixed
/// `params.seed`, `mobility.seed`, and `config.seed`.
pub fn run_continuous(
    params: &Params,
    mobility: &MobilityConfig,
    config: &DriverConfig,
    clustering: ClusteringAlgo,
    bounding: BoundingAlgo,
) -> RunSummary {
    let mut world = MobileWorld::new(params, mobility);
    world.set_threads(config.threads);
    let mut registry = ClusterRegistry::new(params.n_users);
    let mut arrival_rng = ChaCha8Rng::seed_from_u64(config.seed ^ ARRIVAL_STREAM);
    let mut host_rng = ChaCha8Rng::seed_from_u64(config.seed ^ HOST_STREAM);
    let rebuild_builder = WpgBuilder::new(params.delta, params.max_peers, InverseDistanceRss);
    let mut per_tick = Vec::with_capacity(config.ticks);
    // The served graph is refilled in place each tick (edge scratch and CSR
    // buffers reach steady size after the first tick — no per-tick
    // allocation churn) and recovered from the System after serving.
    let mut wpg = world.wpg_snapshot();

    for tick in 0..config.ticks {
        // 1. Move the population; fold moves into grid + WPG incrementally.
        let t0 = Instant::now();
        let stats = world.tick();
        world.wpg_snapshot_into(&mut wpg);
        let incremental_ns = t0.elapsed().as_nanos() as u64;
        nela_obs::observe(nela_obs::stage::MOBILITY_INCREMENTAL, incremental_ns);

        // 2. Reference rebuild for the speedup series.
        let rebuild_ns = if config.measure_rebuild {
            let t1 = Instant::now();
            let rebuilt = rebuild_builder.build(world.points());
            let ns = t1.elapsed().as_nanos() as u64;
            debug_assert_eq!(rebuilt.m(), wpg.m(), "incremental update diverged");
            nela_obs::observe(nela_obs::stage::MOBILITY_REBUILD, ns);
            ns
        } else {
            0
        };

        // 3. Epoch-scoped lifetime audit: only clusters containing a user
        // whose rank list changed this tick can have lost their certificate
        // (edge weights are min-of-mutual-ranks), so only those are checked.
        let audit = invalidate_clusters_of_users(&mut registry, &wpg, world.changed_users());

        // 4. Serve this tick's Poisson batch through the standard engine,
        // against the maintained grid frozen in place (no rebuild).
        let system = nela::System::with_parts(
            params.clone(),
            world.points().to_vec(),
            world.grid_index(),
            wpg,
        );
        let mut engine = CloakingEngine::with_registry(&system, clustering, bounding, registry);
        let requests = poisson(&mut arrival_rng, config.rate);
        let mut m = TickMetrics {
            tick,
            moved: stats.moved,
            dirty: stats.dirty,
            changed: stats.changed,
            incremental_ns,
            rebuild_ns,
            invalidated: audit.invalidated,
            released: audit.released,
            active_clusters: 0,
            requests,
            served: 0,
            reused: 0,
            failed: 0,
            valid_served: 0,
        };
        for _ in 0..requests {
            let host: UserId = host_rng.gen_range(0..params.n_users as u32);
            match engine.request(host) {
                Ok(r) => {
                    m.served += 1;
                    if r.reused {
                        m.reused += 1;
                    }
                    if system.grid.count_in_rect(&r.region) >= params.k {
                        m.valid_served += 1;
                    }
                }
                Err(_) => m.failed += 1,
            }
        }
        registry = engine.into_registry();
        m.active_clusters = registry.active_cluster_count();
        per_tick.push(m);
        let nela::System { wpg: recovered, .. } = system;
        wpg = recovered;
    }

    let sum = |f: fn(&TickMetrics) -> usize| per_tick.iter().map(f).sum::<usize>();
    let served = sum(|m| m.served);
    // Every measured tick counts (`rebuild_ns > 0` marks "was measured" —
    // a real rebuild never rounds to 0 ns); sub-microsecond incremental
    // ticks are kept, not filtered, so the mean is not biased toward
    // rebuild-friendly ticks.
    let speedups: Vec<f64> = per_tick
        .iter()
        .filter(|m| m.rebuild_ns > 0)
        .map(|m| m.rebuild_ns as f64 / m.incremental_ns.max(1) as f64)
        .collect();
    RunSummary {
        ticks: config.ticks,
        population: params.n_users,
        mobile_users: world.mobile_users(),
        requests: sum(|m| m.requests),
        served,
        reused: sum(|m| m.reused),
        failed: sum(|m| m.failed),
        valid_served: sum(|m| m.valid_served),
        invalidated: sum(|m| m.invalidated),
        released: sum(|m| m.released),
        reuse_rate: rate_of(sum(|m| m.reused), served),
        validity_rate: rate_of(sum(|m| m.valid_served), served),
        mean_speedup: (!speedups.is_empty())
            .then(|| speedups.iter().sum::<f64>() / speedups.len() as f64),
        per_tick,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::invalidate_broken_clusters;

    fn small_run(seed: u64) -> RunSummary {
        small_run_threads(seed, 1)
    }

    fn small_run_threads(seed: u64, threads: usize) -> RunSummary {
        let params = Params {
            k: 5,
            ..Params::scaled(1_000)
        };
        let config = DriverConfig {
            ticks: 6,
            rate: 8.0,
            seed,
            measure_rebuild: false,
            threads,
        };
        run_continuous(
            &params,
            &MobilityConfig::default(),
            &config,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Optimal,
        )
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let a = small_run(7);
        let b = small_run(7);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.served, b.served);
        assert_eq!(a.reused, b.reused);
        assert_eq!(a.invalidated, b.invalidated);
        for (x, y) in a.per_tick.iter().zip(&b.per_tick) {
            assert_eq!(
                (x.moved, x.dirty, x.changed, x.served, x.reused),
                (y.moved, y.dirty, y.changed, y.served, y.reused)
            );
        }
    }

    #[test]
    fn threaded_maintenance_keeps_run_identical() {
        // The `threads` knob only parallelizes the dirty-set rescore, which
        // is bit-identical to serial — so the whole run must be too.
        let serial = small_run_threads(7, 1);
        for threads in [2usize, 4] {
            let par = small_run_threads(7, threads);
            assert_eq!(serial.served, par.served, "{threads} threads");
            assert_eq!(serial.reused, par.reused, "{threads} threads");
            assert_eq!(serial.invalidated, par.invalidated, "{threads} threads");
            assert_eq!(serial.valid_served, par.valid_served, "{threads} threads");
            for (x, y) in serial.per_tick.iter().zip(&par.per_tick) {
                assert_eq!(
                    (
                        x.moved,
                        x.dirty,
                        x.changed,
                        x.served,
                        x.reused,
                        x.valid_served
                    ),
                    (
                        y.moved,
                        y.dirty,
                        y.changed,
                        y.served,
                        y.reused,
                        y.valid_served
                    ),
                    "tick diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn epoch_audit_matches_full_audit_across_run() {
        // Replay the same world and registry evolution, auditing with the
        // full sweep instead of the epoch-scoped one: the retirement
        // decisions must be identical (the driver itself uses the epoch
        // audit, so `invalidated`/`released` already come from it).
        let params = Params {
            k: 5,
            ..Params::scaled(1_000)
        };
        let mobility = MobilityConfig::default();
        let mut world = MobileWorld::new(&params, &mobility);
        let mut reg_epoch = ClusterRegistry::new(params.n_users);
        let mut reg_full = ClusterRegistry::new(params.n_users);
        // Seed both registries with identical clusters from a one-tick run.
        let system = world.system_snapshot();
        let mut engine = CloakingEngine::with_registry(
            &system,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Optimal,
            std::mem::replace(&mut reg_epoch, ClusterRegistry::new(0)),
        );
        for host in (0..1000u32).step_by(29) {
            let _ = engine.request(host);
        }
        reg_epoch = engine.into_registry();
        for (_, rc) in reg_epoch.active_clusters() {
            reg_full.register(rc.cluster.clone());
        }
        for _ in 0..4 {
            world.tick();
            let wpg = world.wpg_snapshot();
            let a = invalidate_clusters_of_users(&mut reg_epoch, &wpg, world.changed_users());
            let b = invalidate_broken_clusters(&mut reg_full, &wpg);
            assert_eq!(a.invalidated, b.invalidated);
            assert_eq!(a.released, b.released);
            assert!(a.checked <= b.checked, "epoch audit checked more");
            assert_eq!(
                reg_epoch.active_cluster_count(),
                reg_full.active_cluster_count()
            );
        }
    }

    #[test]
    fn accounting_is_consistent() {
        let s = small_run(3);
        assert_eq!(s.ticks, s.per_tick.len());
        assert_eq!(s.requests, s.served + s.failed);
        assert!(s.reused <= s.served);
        assert!(s.valid_served <= s.served);
        assert!(s.served > 0);
        let reuse = s.reuse_rate.expect("served > 0 must yield a rate");
        assert!((0.0..=1.0).contains(&reuse));
        // Rebuild unmeasured → no speedup claim, not a fake 0.0.
        assert_eq!(s.mean_speedup, None);
    }

    #[test]
    fn zero_traffic_reports_no_rates() {
        let params = Params {
            k: 5,
            ..Params::scaled(500)
        };
        let config = DriverConfig {
            ticks: 2,
            rate: 0.0,
            seed: 5,
            measure_rebuild: true,
            threads: 1,
        };
        let s = run_continuous(
            &params,
            &MobilityConfig::default(),
            &config,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Optimal,
        );
        assert_eq!(s.served, 0);
        assert_eq!(s.reuse_rate, None, "no served requests → no reuse rate");
        assert_eq!(s.validity_rate, None);
        // The rebuild was measured, so the speedup series exists.
        assert!(s.mean_speedup.is_some());
        assert!(s.per_tick.iter().all(|m| m.rebuild_ns > 0));
    }

    #[test]
    fn served_regions_are_mostly_valid() {
        let s = small_run(11);
        assert!(s.served > 0, "no requests served");
        // Motion erodes some regions, but the audit keeps the bulk valid.
        let validity = s.validity_rate.expect("served > 0 must yield a rate");
        assert!(validity > 0.5, "validity collapsed: {validity}");
    }

    #[test]
    fn static_population_never_invalidates() {
        let params = Params {
            k: 5,
            ..Params::scaled(800)
        };
        let mobility = MobilityConfig {
            stationary_frac: 1.0,
            waypoint_frac: 0.0,
            ..MobilityConfig::default()
        };
        let config = DriverConfig {
            ticks: 4,
            rate: 6.0,
            seed: 2,
            measure_rebuild: false,
            threads: 1,
        };
        let s = run_continuous(
            &params,
            &mobility,
            &config,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Optimal,
        );
        assert_eq!(s.invalidated, 0);
        assert_eq!(s.released, 0);
    }

    #[test]
    fn mobile_population_reuses_and_invalidates() {
        let s = small_run(19);
        // Across 6 ticks at rate 8 over 1k users, some requests land on
        // already-clustered users (reuse) and motion breaks some clusters.
        assert!(s.invalidated > 0, "no cluster ever invalidated");
        assert!(s.reused > 0, "no request ever reused a cluster");
    }
}
