//! Continuous cloaking under mobility.
//!
//! The paper evaluates NELA on a static population snapshot: positions are
//! drawn once, the WPG is built once, and a workload of S requests is
//! served. This crate extends the reproduction into a *continuous* system,
//! the regime the paper's §III system model implies but never measures:
//!
//! - [`model`] — seeded mobility models (random waypoint, Gauss–Markov, and
//!   a stationary share) stepping the population tick by tick, reproducible
//!   per seed exactly like `nela_geo::dataset`;
//! - [`world`] — [`MobileWorld`], which folds each tick's moves into a
//!   [`nela_geo::DynamicGrid`] and an incrementally maintained
//!   [`nela_wpg::IncrementalWpg`] with an exact-equivalence guarantee
//!   against a from-scratch build;
//! - [`lifetime`] — cluster lifetime management: registered clusters whose
//!   t-connectivity certificate no longer holds in the current WPG (a
//!   member drifted out of δ-range, or an internal edge's weight rose above
//!   the cluster's MEW) are retired, releasing their members;
//! - [`driver`] — [`run_continuous`], the end-to-end workload: tick the
//!   world, audit cluster lifetimes, and serve a Poisson stream of cloaking
//!   requests through the standard [`nela::CloakingEngine`] with the
//!   registry carried across ticks, reporting cluster-reuse rate,
//!   incremental-vs-rebuild speedup, and anonymity validity over time.
//!
//! Surfaces: the `exp_mobility` binary and `bench_mobility` criterion bench
//! in `nela-bench`, and the `mobility` subcommand of the `nela` CLI.

pub mod driver;
pub mod lifetime;
pub mod model;
pub mod world;

pub use driver::{run_continuous, DriverConfig, RunSummary, TickMetrics};
pub use lifetime::{cluster_still_valid, invalidate_broken_clusters, InvalidationReport};
pub use model::{MobilityConfig, MobilityField};
pub use world::{MobileWorld, TickStats};
