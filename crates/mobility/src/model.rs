//! Seeded mobility models.
//!
//! The paper evaluates a static population snapshot; this module supplies
//! the motion side of the continuous extension. Three standard models from
//! the ad-hoc-network literature, mixed per user:
//!
//! - **Random waypoint** — pick a uniform destination and a uniform speed,
//!   travel in a straight line, repeat on arrival. The classic baseline.
//! - **Gauss–Markov** — a velocity process with tunable memory `α`:
//!   `v' = α·v + (1−α)·μ + σ·√(1−α²)·z`, giving smooth, temporally
//!   correlated motion without random-waypoint's sharp turns. Users reflect
//!   off the unit-square walls.
//! - **Stationary** — a fraction of users never moves (parked devices),
//!   which keeps per-tick move fractions realistic and gives the
//!   incremental WPG maintenance its locality.
//!
//! All randomness flows from `cfg.seed`, exactly like `nela_geo::dataset` —
//! every trajectory is reproducible per seed. The model *assignment* and the
//! per-tick *stepping* draw from separate derived streams (`seed ^ tag`), so
//! changing the mixture fractions (which changes how many draws assignment
//! consumes) never reshuffles the motion noise of users that kept their
//! model.

use nela_geo::{Point, UserId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Mixture weights and model parameters for a mobile population.
#[derive(Debug, Clone)]
pub struct MobilityConfig {
    /// Fraction of users that never move.
    pub stationary_frac: f64,
    /// Fraction of users following random waypoint (the rest, after the
    /// stationary share, follow Gauss–Markov).
    pub waypoint_frac: f64,
    /// Waypoint speed range, in unit-square lengths per tick.
    pub speed_min: f64,
    pub speed_max: f64,
    /// Gauss–Markov memory `α` in `[0, 1)`: 0 = memoryless, →1 = inertial.
    pub gm_alpha: f64,
    /// Gauss–Markov mean speed per tick (per axis magnitude scale).
    pub gm_mean_speed: f64,
    /// Gauss–Markov per-axis velocity noise σ.
    pub gm_sigma: f64,
    /// Seed for the population's motion stream.
    pub seed: u64,
}

impl Default for MobilityConfig {
    /// A mix matched to the paper's pedestrian scenario: half the devices
    /// parked, speeds on the order of the radio range δ per tick.
    fn default() -> Self {
        MobilityConfig {
            stationary_frac: 0.5,
            waypoint_frac: 0.3,
            speed_min: 5e-4,
            speed_max: 4e-3,
            gm_alpha: 0.85,
            gm_mean_speed: 1e-3,
            gm_sigma: 5e-4,
            seed: 0x6d_6f_62, // "mob"
        }
    }
}

impl MobilityConfig {
    /// The default mix with a different stationary fraction; the mobile
    /// remainder keeps the default waypoint : Gauss–Markov ratio (3 : 2).
    pub fn with_stationary(frac: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&frac),
            "stationary fraction must be a probability"
        );
        let base = Self::default();
        let waypoint_share = base.waypoint_frac / (1.0 - base.stationary_frac);
        MobilityConfig {
            stationary_frac: frac,
            waypoint_frac: (1.0 - frac) * waypoint_share,
            ..base
        }
    }

    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.stationary_frac)
                && (0.0..=1.0).contains(&self.waypoint_frac)
                && self.stationary_frac + self.waypoint_frac <= 1.0 + 1e-12,
            "mixture fractions must be probabilities summing to at most 1"
        );
        assert!(
            self.speed_min > 0.0 && self.speed_min <= self.speed_max,
            "waypoint speed range must be positive and ordered"
        );
        assert!(
            (0.0..1.0).contains(&self.gm_alpha),
            "Gauss–Markov α must be in [0, 1)"
        );
    }
}

/// Stream tag for the one-time model assignment.
const ASSIGN_STREAM: u64 = 0x4153_5349_474e; // "ASSIGN"
/// Stream tag for per-tick motion draws.
const STEP_STREAM: u64 = 0x5354_4550; // "STEP"

/// Per-user motion state.
#[derive(Debug, Clone)]
enum Motion {
    Stationary,
    Waypoint { target: Point, speed: f64 },
    GaussMarkov { vx: f64, vy: f64 },
}

/// The motion state of an entire population, stepped one tick at a time.
#[derive(Debug, Clone)]
pub struct MobilityField {
    motions: Vec<Motion>,
    rng: ChaCha8Rng,
    gm_alpha: f64,
    gm_mean_speed: f64,
    gm_sigma: f64,
    speed_min: f64,
    speed_max: f64,
}

/// Standard normal via Box–Muller (same technique as `nela_geo::dataset`).
fn normal(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl MobilityField {
    /// Assigns a motion model to each of `n` users according to `cfg`. The
    /// assignment and all future steps are functions of `cfg.seed` alone.
    pub fn new(n: usize, cfg: &MobilityConfig) -> Self {
        cfg.validate();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ ASSIGN_STREAM);
        let motions = (0..n)
            .map(|_| {
                let roll: f64 = rng.gen();
                if roll < cfg.stationary_frac {
                    Motion::Stationary
                } else if roll < cfg.stationary_frac + cfg.waypoint_frac {
                    Motion::Waypoint {
                        target: Point::new(rng.gen(), rng.gen()),
                        speed: rng.gen_range(cfg.speed_min..=cfg.speed_max),
                    }
                } else {
                    let angle = rng.gen_range(0.0..std::f64::consts::TAU);
                    Motion::GaussMarkov {
                        vx: cfg.gm_mean_speed * angle.cos(),
                        vy: cfg.gm_mean_speed * angle.sin(),
                    }
                }
            })
            .collect();
        MobilityField {
            motions,
            rng: ChaCha8Rng::seed_from_u64(cfg.seed ^ STEP_STREAM),
            gm_alpha: cfg.gm_alpha,
            gm_mean_speed: cfg.gm_mean_speed,
            gm_sigma: cfg.gm_sigma,
            speed_min: cfg.speed_min,
            speed_max: cfg.speed_max,
        }
    }

    /// Number of users under this field.
    pub fn len(&self) -> usize {
        self.motions.len()
    }

    /// True when the field drives no users.
    pub fn is_empty(&self) -> bool {
        self.motions.is_empty()
    }

    /// Number of users that can ever move (non-stationary).
    pub fn mobile_users(&self) -> usize {
        self.motions
            .iter()
            .filter(|m| !matches!(m, Motion::Stationary))
            .count()
    }

    /// Advances every mobile user one tick from `positions`, returning the
    /// moves as `(id, new position)` — the exact input shape of
    /// `IncrementalWpg::apply_moves`. Stationary users are omitted.
    pub fn step(&mut self, positions: &[Point]) -> Vec<(UserId, Point)> {
        assert_eq!(positions.len(), self.motions.len(), "population mismatch");
        let mut moves = Vec::with_capacity(self.mobile_users());
        for (i, motion) in self.motions.iter_mut().enumerate() {
            let p = positions[i];
            let next = match motion {
                Motion::Stationary => continue,
                Motion::Waypoint { target, speed } => {
                    let d = p.dist(target);
                    if d <= *speed {
                        // Arrived: adopt the target, pick the next leg.
                        let arrived = *target;
                        *target = Point::new(self.rng.gen(), self.rng.gen());
                        *speed = self.rng.gen_range(self.speed_min..=self.speed_max);
                        arrived
                    } else {
                        let f = *speed / d;
                        Point::new(p.x + (target.x - p.x) * f, p.y + (target.y - p.y) * f)
                    }
                }
                Motion::GaussMarkov { vx, vy } => {
                    let a = self.gm_alpha;
                    let noise = self.gm_sigma * (1.0 - a * a).sqrt();
                    // Mean velocity keeps the current heading's magnitude so
                    // users drift rather than collapse to a halt.
                    let speed = (*vx * *vx + *vy * *vy).sqrt().max(1e-12);
                    let (mx, my) = (
                        self.gm_mean_speed * *vx / speed,
                        self.gm_mean_speed * *vy / speed,
                    );
                    *vx = a * *vx + (1.0 - a) * mx + noise * normal(&mut self.rng);
                    *vy = a * *vy + (1.0 - a) * my + noise * normal(&mut self.rng);
                    let (mut x, mut y) = (p.x + *vx, p.y + *vy);
                    // Reflect off the unit-square walls, flipping velocity.
                    if !(0.0..=1.0).contains(&x) {
                        *vx = -*vx;
                        x = x.clamp(0.0, 1.0);
                    }
                    if !(0.0..=1.0).contains(&y) {
                        *vy = -*vy;
                        y = y.clamp(0.0, 1.0);
                    }
                    Point::new(x, y)
                }
            };
            moves.push((i as UserId, next.clamp_unit()));
        }
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| Point::new(rng.gen(), rng.gen())).collect()
    }

    #[test]
    fn with_stationary_rescales_the_mobile_split() {
        let cfg = MobilityConfig::with_stationary(0.9);
        cfg.validate();
        assert!((cfg.stationary_frac - 0.9).abs() < 1e-12);
        // Default mobile split is 0.3 waypoint / 0.2 Gauss–Markov (3:2).
        assert!((cfg.waypoint_frac - 0.06).abs() < 1e-12);
        // Degenerate ends stay valid probabilities.
        MobilityConfig::with_stationary(0.0).validate();
        MobilityConfig::with_stationary(1.0).validate();
    }

    #[test]
    fn stationary_users_never_move() {
        let cfg = MobilityConfig {
            stationary_frac: 1.0,
            waypoint_frac: 0.0,
            ..MobilityConfig::default()
        };
        let mut field = MobilityField::new(50, &cfg);
        assert_eq!(field.mobile_users(), 0);
        assert!(field.step(&uniform_points(50, 1)).is_empty());
    }

    #[test]
    fn steps_are_seed_deterministic() {
        let cfg = MobilityConfig::default();
        let pts = uniform_points(200, 2);
        let mut a = MobilityField::new(200, &cfg);
        let mut b = MobilityField::new(200, &cfg);
        for _ in 0..5 {
            assert_eq!(a.step(&pts), b.step(&pts));
        }
    }

    #[test]
    fn positions_stay_in_unit_square() {
        let cfg = MobilityConfig {
            stationary_frac: 0.0,
            waypoint_frac: 0.5,
            gm_mean_speed: 0.05, // fast, to provoke wall hits
            gm_sigma: 0.02,
            ..MobilityConfig::default()
        };
        let mut field = MobilityField::new(100, &cfg);
        let mut pts = uniform_points(100, 3);
        for _ in 0..200 {
            for (id, p) in field.step(&pts) {
                assert!(p.in_unit_square(), "escaped: {p:?}");
                pts[id as usize] = p;
            }
        }
    }

    #[test]
    fn waypoint_moves_toward_target_by_speed() {
        let cfg = MobilityConfig {
            stationary_frac: 0.0,
            waypoint_frac: 1.0,
            speed_min: 1e-3,
            speed_max: 1e-3,
            ..MobilityConfig::default()
        };
        let mut field = MobilityField::new(20, &cfg);
        let pts = uniform_points(20, 4);
        for (id, p) in field.step(&pts) {
            let step = pts[id as usize].dist(&p);
            assert!(step <= 1e-3 + 1e-12, "step {step} exceeds speed");
        }
    }

    #[test]
    fn mixture_fractions_roughly_respected() {
        let cfg = MobilityConfig {
            stationary_frac: 0.5,
            waypoint_frac: 0.25,
            ..MobilityConfig::default()
        };
        let field = MobilityField::new(4000, &cfg);
        let mobile = field.mobile_users() as f64 / 4000.0;
        assert!((mobile - 0.5).abs() < 0.05, "mobile fraction {mobile}");
    }

    #[test]
    #[should_panic(expected = "mixture fractions")]
    fn rejects_bad_fractions() {
        MobilityField::new(
            10,
            &MobilityConfig {
                stationary_frac: 0.8,
                waypoint_frac: 0.5,
                ..MobilityConfig::default()
            },
        );
    }
}
