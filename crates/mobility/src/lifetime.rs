//! Cluster lifetime management under mobility.
//!
//! A registered cluster was built as a t-connected set of the WPG at some
//! past tick: every member reached every other through edges of weight at
//! most the cluster's connectivity `t` (its MEW). Motion erodes that
//! certificate in two ways:
//!
//! - a member drifts out of radio range δ of its cluster peers, deleting
//!   the edges that connected it, or
//! - RSS ranks shift so an internal edge's weight rises above `t` (the MEW
//!   constraint breaks), cutting the t-connectivity path.
//!
//! Either way the cluster no longer certifies k-anonymity-by-proximity and
//! must not be reused. [`invalidate_broken_clusters`] audits every live
//! cluster against the *current* WPG and retires the broken ones through
//! [`ClusterRegistry::invalidate`], releasing their members to re-request.

use nela_cluster::registry::{ClusterId, ClusterRegistry};
use nela_geo::UserId;
use nela_wpg::Wpg;
use std::collections::HashSet;

/// Outcome of one lifetime audit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvalidationReport {
    /// Live clusters examined.
    pub checked: usize,
    /// Clusters retired this audit.
    pub invalidated: usize,
    /// Users released back to the unclustered pool.
    pub released: usize,
}

/// True when `members` still form a t-connected set in `wpg`: every member
/// reaches every other through member-internal edges of weight ≤ `t`.
pub fn cluster_still_valid(wpg: &Wpg, members: &[UserId], t: nela_wpg::Weight) -> bool {
    if members.len() <= 1 {
        return true;
    }
    let member_set: HashSet<UserId> = members.iter().copied().collect();
    let mut visited: HashSet<UserId> = HashSet::from([members[0]]);
    let mut stack = vec![members[0]];
    while let Some(u) = stack.pop() {
        for (v, w) in wpg.neighbors(u) {
            if w <= t && member_set.contains(&v) && visited.insert(v) {
                stack.push(v);
            }
        }
    }
    visited.len() == members.len()
}

/// Retires every live cluster whose t-connectivity certificate no longer
/// holds in `wpg`.
pub fn invalidate_broken_clusters(registry: &mut ClusterRegistry, wpg: &Wpg) -> InvalidationReport {
    let mut report = InvalidationReport::default();
    let broken: Vec<ClusterId> = registry
        .active_clusters()
        .filter(|(_, rc)| {
            report.checked += 1;
            !cluster_still_valid(wpg, &rc.cluster.members, rc.cluster.connectivity)
        })
        .map(|(id, _)| id)
        .collect();
    for id in broken {
        report.released += registry.invalidate(id);
        report.invalidated += 1;
    }
    report
}

/// Epoch-based audit: re-checks only the live clusters containing a user in
/// `changed` (the users whose WPG rank list changed this tick, e.g.
/// `MobileWorld::changed_users`) and retires the broken ones.
///
/// **Exactness.** An edge's weight is the min of its endpoints' mutual
/// ranks, so an edge incident to `u` can only appear, vanish, or change
/// weight when `u`'s or its peer's rank list changed — and the peer is also
/// in `changed` then (mutuality: the edge is in both lists). A cluster's
/// certificate depends only on edges between members, so a cluster with no
/// member in `changed` has exactly the certificate it had last tick, when it
/// was valid. Auditing only the touched clusters therefore retires exactly
/// the clusters [`invalidate_broken_clusters`] would.
pub fn invalidate_clusters_of_users(
    registry: &mut ClusterRegistry,
    wpg: &Wpg,
    changed: &[UserId],
) -> InvalidationReport {
    let mut touched: Vec<ClusterId> = changed
        .iter()
        .filter_map(|&u| registry.cluster_id_of(u))
        .collect();
    touched.sort_unstable();
    touched.dedup();
    let mut report = InvalidationReport::default();
    for id in touched {
        let rc = registry.get(id);
        if rc.retired {
            continue;
        }
        report.checked += 1;
        if !cluster_still_valid(wpg, &rc.cluster.members, rc.cluster.connectivity) {
            report.released += registry.invalidate(id);
            report.invalidated += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use nela_cluster::Cluster;
    use nela_wpg::{Edge, Wpg};

    fn path_graph(weights: &[u32]) -> Wpg {
        let edges: Vec<Edge> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| Edge::new(i as UserId, i as UserId + 1, w))
            .collect();
        Wpg::from_edges(weights.len() + 1, &edges)
    }

    #[test]
    fn connected_cluster_is_valid() {
        let g = path_graph(&[1, 2, 1]);
        assert!(cluster_still_valid(&g, &[0, 1, 2, 3], 2));
    }

    #[test]
    fn raised_edge_weight_breaks_validity() {
        // Same membership, but the middle edge's weight exceeds t.
        let g = path_graph(&[1, 3, 1]);
        assert!(!cluster_still_valid(&g, &[0, 1, 2, 3], 2));
    }

    #[test]
    fn missing_member_edge_breaks_validity() {
        // Member 3 is isolated from {0,1} in the current graph.
        let g = Wpg::from_edges(4, &[Edge::new(0, 1, 1)]);
        assert!(!cluster_still_valid(&g, &[0, 1, 3], 2));
        assert!(cluster_still_valid(&g, &[0, 1], 2));
    }

    #[test]
    fn connectivity_must_be_internal_to_the_cluster() {
        // 0 and 2 are connected only through 1, which is not a member.
        let g = path_graph(&[1, 1]);
        assert!(!cluster_still_valid(&g, &[0, 2], 2));
    }

    #[test]
    fn audit_retires_only_broken_clusters() {
        let g = path_graph(&[1, 3, 1]); // edges: 0-1 w1, 1-2 w3, 2-3 w1
        let mut reg = ClusterRegistry::new(4);
        let ok = reg.register(Cluster {
            members: vec![0, 1],
            connectivity: 1,
        });
        let broken = reg.register(Cluster {
            members: vec![2, 3],
            connectivity: 1,
        });
        // Break the second cluster by auditing against a graph without its
        // edge.
        let g2 = Wpg::from_edges(4, &[Edge::new(0, 1, 1)]);
        let _ = g;
        let report = invalidate_broken_clusters(&mut reg, &g2);
        assert_eq!(
            report,
            InvalidationReport {
                checked: 2,
                invalidated: 1,
                released: 2
            }
        );
        assert!(!reg.get(ok).retired);
        assert!(reg.get(broken).retired);
        assert_eq!(reg.reciprocity_violation(), None);
    }

    #[test]
    fn epoch_audit_retires_same_clusters_as_full_audit() {
        // Two clusters; the current graph breaks only the second. The
        // epoch-scoped audit fed the changed member must retire exactly what
        // the full sweep retires, and skip untouched clusters entirely.
        let build = || {
            let mut reg = ClusterRegistry::new(4);
            let ok = reg.register(Cluster {
                members: vec![0, 1],
                connectivity: 1,
            });
            let broken = reg.register(Cluster {
                members: vec![2, 3],
                connectivity: 1,
            });
            (reg, ok, broken)
        };
        let g2 = Wpg::from_edges(4, &[Edge::new(0, 1, 1)]);
        let (mut full_reg, _, _) = build();
        let full = invalidate_broken_clusters(&mut full_reg, &g2);
        let (mut epoch_reg, ok, broken) = build();
        // Only users 2 and 3 changed (their edge vanished — mutuality puts
        // both in the changed set). Duplicates must not double-audit.
        let report = invalidate_clusters_of_users(&mut epoch_reg, &g2, &[3, 2, 3]);
        assert_eq!(report.checked, 1, "untouched cluster must not be audited");
        assert_eq!(report.invalidated, full.invalidated);
        assert_eq!(report.released, full.released);
        assert!(!epoch_reg.get(ok).retired);
        assert!(epoch_reg.get(broken).retired);
        // An empty changed set audits nothing.
        let report = invalidate_clusters_of_users(&mut epoch_reg, &g2, &[]);
        assert_eq!(report, InvalidationReport::default());
        // Changed users without a cluster are ignored.
        let report = invalidate_clusters_of_users(&mut epoch_reg, &g2, &[0]);
        assert_eq!(report.checked, 1);
        assert_eq!(report.invalidated, 0);
    }

    #[test]
    fn audit_is_stable_when_nothing_breaks() {
        let g = path_graph(&[1, 1, 1]);
        let mut reg = ClusterRegistry::new(4);
        reg.register(Cluster {
            members: vec![0, 1, 2, 3],
            connectivity: 1,
        });
        let report = invalidate_broken_clusters(&mut reg, &g);
        assert_eq!(report.invalidated, 0);
        assert_eq!(reg.active_cluster_count(), 1);
    }
}
