//! A population whose grid index and WPG track its motion incrementally.

use crate::model::{MobilityConfig, MobilityField};
use nela::{Params, System};
use nela_geo::{DatasetSpec, Point};
use nela_wpg::{IncrementalWpg, InverseDistanceRss, UpdateStats, Wpg, WpgBuilder};

/// Counters for one [`MobileWorld::tick`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickStats {
    /// Users that moved this tick.
    pub moved: usize,
    /// Users whose WPG rank list was recomputed (movers + δ-neighborhoods).
    pub dirty: usize,
}

/// The live state of a mobile deployment: positions, the dynamic grid, and
/// the incrementally maintained WPG, all stepped together.
pub struct MobileWorld {
    params: Params,
    field: MobilityField,
    wpg: IncrementalWpg<InverseDistanceRss>,
}

impl MobileWorld {
    /// Generates the initial population from `params` (same seeded dataset
    /// path as [`System::build`]) and attaches the mobility mixture.
    pub fn new(params: &Params, mobility: &MobilityConfig) -> Self {
        let spec = DatasetSpec {
            n: params.n_users,
            seed: params.seed,
            distribution: params.distribution.clone(),
        };
        let points = spec.generate();
        Self::from_points(params, mobility, &points)
    }

    /// Attaches motion and incremental maintenance to an existing snapshot.
    pub fn from_points(params: &Params, mobility: &MobilityConfig, points: &[Point]) -> Self {
        let builder = WpgBuilder::new(params.delta, params.max_peers, InverseDistanceRss);
        MobileWorld {
            params: params.clone(),
            field: MobilityField::new(points.len(), mobility),
            wpg: IncrementalWpg::new(builder, points),
        }
    }

    /// Current positions.
    pub fn points(&self) -> &[Point] {
        self.wpg.points()
    }

    /// The parameters this world runs under.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Users that can ever move.
    pub fn mobile_users(&self) -> usize {
        self.field.mobile_users()
    }

    /// Advances the population one tick and folds the moves into the grid
    /// and WPG incrementally.
    pub fn tick(&mut self) -> TickStats {
        let moves = self.field.step(self.wpg.points());
        let UpdateStats { moved, dirty } = self.wpg.apply_moves(&moves);
        TickStats { moved, dirty }
    }

    /// Materializes the current WPG (exactly the from-scratch graph, see
    /// `nela_wpg::incremental`).
    pub fn wpg_snapshot(&self) -> Wpg {
        self.wpg.snapshot()
    }

    /// Freezes the current state into a [`System`] the cloaking engine can
    /// serve from.
    pub fn system_snapshot(&self) -> System {
        System::with_parts(
            self.params.clone(),
            self.wpg.points().to_vec(),
            self.wpg.grid().snapshot(),
            self.wpg.snapshot(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> Params {
        Params {
            k: 5,
            ..Params::scaled(1_000)
        }
    }

    #[test]
    fn tick_moves_mobile_users_only() {
        let params = small_params();
        let cfg = MobilityConfig {
            stationary_frac: 0.6,
            ..MobilityConfig::default()
        };
        let mut world = MobileWorld::new(&params, &cfg);
        let stats = world.tick();
        assert_eq!(stats.moved, world.mobile_users());
        assert!(stats.dirty >= stats.moved);
    }

    #[test]
    fn snapshot_matches_full_rebuild_after_ticks() {
        let params = small_params();
        let mut world = MobileWorld::new(&params, &MobilityConfig::default());
        for _ in 0..3 {
            world.tick();
        }
        let rebuilt = WpgBuilder::new(params.delta, params.max_peers, InverseDistanceRss)
            .build(world.points());
        let a: Vec<_> = world.wpg_snapshot().edges().collect();
        let b: Vec<_> = rebuilt.edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn system_snapshot_is_servable() {
        let params = small_params();
        let mut world = MobileWorld::new(&params, &MobilityConfig::default());
        world.tick();
        let system = world.system_snapshot();
        assert_eq!(system.points.len(), 1_000);
        assert_eq!(system.wpg.n(), 1_000);
        assert_eq!(system.grid.len(), 1_000);
    }

    #[test]
    fn worlds_are_seed_deterministic() {
        let params = small_params();
        let cfg = MobilityConfig::default();
        let mut a = MobileWorld::new(&params, &cfg);
        let mut b = MobileWorld::new(&params, &cfg);
        for _ in 0..4 {
            assert_eq!(a.tick(), b.tick());
        }
        assert_eq!(a.points(), b.points());
    }
}
