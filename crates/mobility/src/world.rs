//! A population whose grid index and WPG track its motion incrementally.

use crate::model::{MobilityConfig, MobilityField};
use nela::{Params, System};
use nela_geo::{DatasetSpec, GridIndex, Point, UserId};
use nela_wpg::{IncrementalWpg, InverseDistanceRss, UpdateStats, Wpg, WpgBuilder};

/// Counters for one [`MobileWorld::tick`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickStats {
    /// Unique users that moved this tick.
    pub moved: usize,
    /// Users whose WPG rank list was recomputed (dirty-region superset).
    pub dirty: usize,
    /// Users whose rank list actually changed — the only users whose
    /// incident edges (and hence cluster certificates) can differ from the
    /// previous tick.
    pub changed: usize,
}

/// The live state of a mobile deployment: positions, the sharded dynamic
/// grid, and the incrementally maintained WPG, all stepped together.
pub struct MobileWorld {
    params: Params,
    field: MobilityField,
    wpg: IncrementalWpg<InverseDistanceRss>,
}

impl MobileWorld {
    /// Generates the initial population from `params` (same seeded dataset
    /// path as [`System::build`]) and attaches the mobility mixture.
    pub fn new(params: &Params, mobility: &MobilityConfig) -> Self {
        let spec = DatasetSpec {
            n: params.n_users,
            seed: params.seed,
            distribution: params.distribution.clone(),
        };
        let points = spec.generate();
        Self::from_points(params, mobility, &points)
    }

    /// Attaches motion and incremental maintenance to an existing snapshot.
    /// `params.shards` picks the region-shard layout (0 = default) and
    /// `params.threads` the dirty-set rescore workers; both only affect
    /// performance, never the maintained graph.
    pub fn from_points(params: &Params, mobility: &MobilityConfig, points: &[Point]) -> Self {
        let builder = WpgBuilder::new(params.delta, params.max_peers, InverseDistanceRss);
        let shards = if params.shards > 0 {
            params.shards
        } else {
            nela_geo::sharded::DEFAULT_SHARDS
        };
        MobileWorld {
            params: params.clone(),
            field: MobilityField::new(points.len(), mobility),
            wpg: IncrementalWpg::with_topology(builder, points, shards, params.threads),
        }
    }

    /// Current positions.
    pub fn points(&self) -> &[Point] {
        self.wpg.points()
    }

    /// The parameters this world runs under.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Users that can ever move.
    pub fn mobile_users(&self) -> usize {
        self.field.mobile_users()
    }

    /// Sets the incremental-maintenance worker-thread count (bit-identical
    /// results for any value).
    pub fn set_threads(&mut self, threads: usize) {
        self.wpg.set_threads(threads);
    }

    /// Advances the population one tick and folds the moves into the grid
    /// and WPG incrementally.
    pub fn tick(&mut self) -> TickStats {
        let moves = self.field.step(self.wpg.points());
        let UpdateStats {
            moved,
            dirty,
            changed,
        } = self.wpg.apply_moves(&moves);
        TickStats {
            moved,
            dirty,
            changed,
        }
    }

    /// Users whose rank list changed in the last tick — the exact audit set
    /// for epoch-based cluster reuse (a cluster can only break when a
    /// member's list changed).
    pub fn changed_users(&self) -> &[UserId] {
        self.wpg.changed_users()
    }

    /// Materializes the current WPG (exactly the from-scratch graph, see
    /// `nela_wpg::incremental`).
    pub fn wpg_snapshot(&self) -> Wpg {
        self.wpg.snapshot()
    }

    /// Rebuilds `wpg` in place from the maintained rank lists — the
    /// alloc-free per-tick snapshot (bit-identical to
    /// [`MobileWorld::wpg_snapshot`]).
    pub fn wpg_snapshot_into(&mut self, wpg: &mut Wpg) {
        self.wpg.snapshot_into(wpg);
    }

    /// Freezes the maintained cell structure into a static [`GridIndex`] —
    /// a pure concatenation of the shard CSRs, bit-identical to
    /// `GridIndex::build` over the current positions (no re-bucketing).
    pub fn grid_index(&self) -> GridIndex {
        self.wpg.grid().to_grid_index()
    }

    /// Freezes the current state into a [`System`] the cloaking engine can
    /// serve from.
    pub fn system_snapshot(&self) -> System {
        System::with_parts(
            self.params.clone(),
            self.wpg.points().to_vec(),
            self.grid_index(),
            self.wpg.snapshot(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> Params {
        Params {
            k: 5,
            ..Params::scaled(1_000)
        }
    }

    #[test]
    fn tick_moves_mobile_users_only() {
        let params = small_params();
        let cfg = MobilityConfig {
            stationary_frac: 0.6,
            ..MobilityConfig::default()
        };
        let mut world = MobileWorld::new(&params, &cfg);
        let stats = world.tick();
        assert_eq!(stats.moved, world.mobile_users());
        assert!(stats.dirty >= stats.moved);
        assert!(stats.changed <= stats.dirty);
    }

    #[test]
    fn snapshot_matches_full_rebuild_after_ticks() {
        let params = small_params();
        let mut world = MobileWorld::new(&params, &MobilityConfig::default());
        for _ in 0..3 {
            world.tick();
        }
        let rebuilt = WpgBuilder::new(params.delta, params.max_peers, InverseDistanceRss)
            .build(world.points());
        let a: Vec<_> = world.wpg_snapshot().edges().collect();
        let b: Vec<_> = rebuilt.edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn maintained_grid_index_matches_fresh_build() {
        let params = small_params();
        let mut world = MobileWorld::new(&params, &MobilityConfig::default());
        for _ in 0..3 {
            world.tick();
        }
        let maintained = world.grid_index();
        let fresh = GridIndex::build(world.points(), params.delta);
        assert_eq!(maintained.len(), fresh.len());
        let mut a = Vec::new();
        let mut b = Vec::new();
        for q in (0..1000u32).step_by(37) {
            maintained.neighbors_within(q, params.delta, &mut a);
            fresh.neighbors_within(q, params.delta, &mut b);
            assert_eq!(a, b, "query {q}");
        }
    }

    #[test]
    fn system_snapshot_is_servable() {
        let params = small_params();
        let mut world = MobileWorld::new(&params, &MobilityConfig::default());
        world.tick();
        let system = world.system_snapshot();
        assert_eq!(system.points.len(), 1_000);
        assert_eq!(system.wpg.n(), 1_000);
        assert_eq!(system.grid.len(), 1_000);
    }

    #[test]
    fn worlds_are_seed_deterministic() {
        let params = small_params();
        let cfg = MobilityConfig::default();
        let mut a = MobileWorld::new(&params, &cfg);
        let mut b = MobileWorld::new(&params, &cfg);
        for _ in 0..4 {
            assert_eq!(a.tick(), b.tick());
        }
        assert_eq!(a.points(), b.points());
    }

    #[test]
    fn sharded_and_threaded_worlds_stay_bit_identical() {
        let cfg = MobilityConfig::default();
        let base = small_params();
        for (shards, threads) in [(1usize, 1usize), (7, 2), (64, 4)] {
            let params = Params {
                shards,
                threads,
                ..base.clone()
            };
            let mut world = MobileWorld::new(&params, &cfg);
            for _ in 0..3 {
                world.tick();
            }
            let mut ref2 = MobileWorld::new(&base, &cfg);
            for _ in 0..3 {
                ref2.tick();
            }
            assert_eq!(world.points(), ref2.points());
            let a: Vec<_> = world.wpg_snapshot().edges().collect();
            let b: Vec<_> = ref2.wpg_snapshot().edges().collect();
            assert_eq!(a, b, "shards={shards} threads={threads}");
        }
    }
}
