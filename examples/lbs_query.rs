//! The full privacy loop: cloak a position, query an untrusted LBS server
//! with the region only, refine locally — and verify the answer matches
//! what a non-private exact query would have returned.
//!
//! Also validates the paper's analytic service-cost model
//! (cost ≈ Cr · |D| · area) against the actually executed range query.
//!
//! ```sh
//! cargo run --release --example lbs_query
//! ```

use nela::lbs::{refine_knn, CloakedQuery, LbsServer, PoiStore};
use nela::{BoundingAlgo, CloakingEngine, ClusteringAlgo, Params, System};

fn main() {
    let params = Params::scaled(20_000);
    let system = System::build(&params);
    // The evaluation's setup: the POI dataset *is* the user population.
    let server = LbsServer::new(PoiStore::from_points(&system.points, params.cr as u32));
    let mut engine = CloakingEngine::new(
        &system,
        ClusteringAlgo::TConnDistributed,
        BoundingAlgo::Secure,
    );

    println!(
        "{:>6} | {:>10} {:>10} {:>12} {:>12} {:>8}",
        "host", "area", "range POIs", "transfer", "model cost", "kNN ok?"
    );
    let mut served = 0;
    let mut model_total = 0.0;
    let mut actual_total = 0u64;
    for host in system.host_sequence(400, 13) {
        let Ok(result) = engine.request(host) else {
            continue;
        };
        let me = system.points[host as usize];

        // (1) The paper's service request: a range query over the region —
        // its transfer cost is what the Cr·|D|·area model approximates.
        let range = server.handle(&result.region, &CloakedQuery::Range { radius: 0.0 });
        let model = nela::service_request_cost(result.region.area(), &params);
        model_total += model;
        actual_total += range.transfer_units;

        // (2) A kNN content query: the candidate superset must refine to the
        // exact answer the user would get by exposing its position.
        let knn = server.handle(&result.region, &CloakedQuery::Knn { k: 5 });
        let refined = refine_knn(server.store(), &knn.candidates, me, 5);
        let correct = refined == server.store().knn(me, 5);
        assert!(correct, "cloaked kNN must refine to the exact answer");

        served += 1;
        if served <= 8 {
            println!(
                "{host:>6} | {:>10.3e} {:>10} {:>12} {:>12.0} {:>8}",
                result.region.area(),
                range.candidates.len(),
                range.transfer_units,
                model,
                if correct { "yes" } else { "NO" },
            );
        }
    }
    println!(
        "\n{served} queries: mean measured range transfer {:.0} units vs \
         analytic model {:.0} units",
        actual_total as f64 / served as f64,
        model_total / served as f64,
    );
    println!(
        "(measured exceeds the uniform-density model where regions sit on \
         dense streets — the model uses the global average density; every \
         cloaked kNN query refined to the exact non-private answer)"
    );
}
