//! Peer-to-peer cloaking over an unreliable radio network, plus concurrent
//! host requests — the robustness scenarios of the paper's §VII.
//!
//! ```sh
//! cargo run --release --example p2p_cloaking
//! ```

use nela::cluster::distributed::distributed_k_clustering_with;
use nela::netsim::concurrency::{ConcurrentWorkload, RequestResolution};
use nela::netsim::network::{Network, NetworkConfig};
use nela::netsim::proto::SimFetch;
use nela::{Params, System};
use nela_geo::UserId;

fn main() {
    let params = Params::scaled(10_000);
    let system = System::build(&params);
    println!(
        "system: {} users, avg degree {:.1}\n",
        params.n_users,
        system.avg_degree()
    );

    // ---- Part 1: one host clusters over increasingly lossy radio.
    println!("== clustering under message loss ==");
    let host: UserId = system
        .host_sequence(200, 3)
        .into_iter()
        .find(|&h| {
            nela::cluster::distributed_k_clustering(&system.wpg, h, params.k, &|_| false).is_ok()
        })
        .expect("no servable host");
    for loss in [0.0, 0.05, 0.15, 0.30] {
        let mut net = Network::new(NetworkConfig {
            loss,
            max_retries: 6,
            seed: 1,
            ..Default::default()
        })
        .expect("config is valid");
        let mut fetch = SimFetch::new(&mut net, &system.wpg, host);
        let outcome = distributed_k_clustering_with(&mut fetch, host, params.k, &|_| false);
        let stats = net.stats();
        match outcome {
            Ok(o) => println!(
                "loss {:>4.0}%: cluster of {:>2}, {} peers contacted, \
                 {} transmissions ({} lost), {:.0} ms virtual time",
                loss * 100.0,
                o.host_cluster.len(),
                o.involved_users,
                stats.transmissions,
                stats.lost,
                net.now() * 1e3,
            ),
            Err(e) => println!("loss {:>4.0}%: request failed: {e}", loss * 100.0),
        }
    }

    // ---- Part 2: a peer crashes mid-protocol.
    println!("\n== peer crash ==");
    let mut net = Network::reliable();
    // Crash the host's strongest peer.
    let victim = system
        .wpg
        .neighbors(host)
        .min_by_key(|&(_, w)| w)
        .map(|(v, _)| v)
        .expect("host has neighbors");
    net.crash_peer(victim);
    let mut fetch = SimFetch::new(&mut net, &system.wpg, host);
    match distributed_k_clustering_with(&mut fetch, host, params.k, &|_| false) {
        Ok(o) => println!(
            "peer {victim} down: still served with cluster of {} (routed around)",
            o.host_cluster.len()
        ),
        Err(e) => println!("peer {victim} down: aborted — {e}"),
    }

    // ---- Part 3: forty hosts race concurrently for overlapping users.
    println!("\n== concurrent requests (optimistic validate-and-claim) ==");
    let hosts = system.host_sequence(40, 9);
    let workload = ConcurrentWorkload {
        k: params.k,
        max_attempts: 10,
        threads: 8,
    };
    let (registry, resolutions) = workload.run(&system.wpg, &hosts);
    let mut served = 0;
    let mut reused = 0;
    let mut unservable = 0;
    let mut starved = 0;
    let mut retried = 0;
    for r in &resolutions {
        match r {
            RequestResolution::Served { attempts, .. } => {
                served += 1;
                if *attempts > 1 {
                    retried += 1;
                }
            }
            RequestResolution::Reused { .. } => reused += 1,
            RequestResolution::Unservable { .. } => unservable += 1,
            RequestResolution::Contention { .. } => starved += 1,
        }
    }
    println!(
        "{served} served ({retried} needed retries), {reused} reused, \
         {unservable} unservable, {starved} starved"
    );
    println!(
        "final registry: {} clusters / {} users, reciprocity violations: {:?}",
        registry.cluster_count(),
        registry.clustered_users(),
        registry.reciprocity_violation(),
    );
}
