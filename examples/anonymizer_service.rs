//! Centralized anonymizer vs. distributed cloaking over the same workload —
//! the trade-off of the paper's Fig. 3 (workflow ¬ vs. ¶).
//!
//! The anonymizer clusters the whole population when the first request
//! arrives (one message per user), then serves every later request for
//! free; the distributed algorithm pays per request but touches only the
//! host's neighborhood.
//!
//! ```sh
//! cargo run --release --example anonymizer_service
//! ```

use nela::metrics::run_workload;
use nela::{BoundingAlgo, ClusteringAlgo, Params, System};

fn main() {
    let params = Params::scaled(20_000);
    let system = System::build(&params);
    println!(
        "system: {} users, avg degree {:.1}, k = {}\n",
        params.n_users,
        system.avg_degree(),
        params.k
    );

    println!(
        "{:>10} | {:>12} {:>12} {:>12} {:>9}",
        "requests", "cent msgs/rq", "dist msgs/rq", "area ratio", "reused"
    );
    for s in [50usize, 200, 800, 2000] {
        let hosts = system.host_sequence(s, 11);
        let central = run_workload(
            &system,
            ClusteringAlgo::TConnCentralized,
            BoundingAlgo::Optimal,
            &hosts,
        );
        let distributed = run_workload(
            &system,
            ClusteringAlgo::TConnDistributed,
            BoundingAlgo::Optimal,
            &hosts,
        );
        println!(
            "{s:>10} | {:>12.1} {:>12.1} {:>12.3} {:>8.0}%",
            central.avg_clustering_messages.expect("workload served"),
            distributed
                .avg_clustering_messages
                .expect("workload served"),
            distributed.avg_cloaked_area.expect("workload served")
                / central.avg_cloaked_area.expect("workload served"),
            100.0 * distributed.reused as f64 / distributed.served.max(1) as f64,
        );
    }

    println!(
        "\nThe centralized cost per request decays as N/S (pure amortization);\n\
         the distributed cost decays because more hosts find themselves\n\
         already clustered. Their cloaked-region quality stays comparable —\n\
         the paper's Fig. 12 story."
    );
}
