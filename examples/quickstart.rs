//! Quickstart: cloak one location-based service request without exposing
//! any coordinate.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nela::{audit_result, BoundingAlgo, CloakingEngine, ClusteringAlgo, Params, System};

fn main() {
    // A scaled-down deployment (20,000 users instead of the paper's
    // 104,770) with Table I densities: δ and the request count scale so the
    // proximity graph looks the same.
    let params = Params::scaled(20_000);
    println!(
        "building system: {} users, δ = {:.2e}, M = {}, k = {}",
        params.n_users, params.delta, params.max_peers, params.k
    );
    let system = System::build(&params);
    println!(
        "weighted proximity graph: {} edges, average degree {:.1}\n",
        system.wpg.m(),
        system.avg_degree()
    );

    // The engine runs both phases: distributed t-connectivity k-clustering
    // (Algorithm 2) and secure progressive bounding (Algorithm 4).
    let mut engine = CloakingEngine::new(
        &system,
        ClusteringAlgo::TConnDistributed,
        BoundingAlgo::Secure,
    );

    for host in system.host_sequence(10, 7) {
        match engine.request(host) {
            Ok(result) => {
                let audit = audit_result(&system, &result);
                println!(
                    "host {host:>5}: cluster of {:>3} users, region area {:.4e} \
                     ({} clustering + {} bounding msgs{}) — audit: {}",
                    result.cluster_size,
                    result.region.area(),
                    result.clustering_messages,
                    result.bounding_messages,
                    if result.reused { ", reused" } else { "" },
                    if audit.passed() { "PASS" } else { "FAIL" },
                );
            }
            Err(e) => println!("host {host:>5}: cannot be served ({e})"),
        }
    }

    println!(
        "\nregistry: {} clusters over {} users; reciprocity violations: {:?}",
        engine.registry().cluster_count(),
        engine.registry().clustered_users(),
        engine.registry().reciprocity_violation(),
    );
}
