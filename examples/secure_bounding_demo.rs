//! Secure bounding in isolation: compare the optimal-increment protocol
//! against the linear, exponential and (non-private) optimal baselines on a
//! single cluster, including the privacy-leak accounting of the paper's
//! future-work discussion (§VII).
//!
//! ```sh
//! cargo run --release --example secure_bounding_demo
//! ```

use nela::bounding::baselines::{optimal_bound, ExponentialPolicy, LinearPolicy};
use nela::bounding::cost::AreaCost;
use nela::bounding::distribution::Uniform;
use nela::bounding::nbound::SecurePolicy;
use nela::bounding::privacy::leak_report;
use nela::bounding::protocol::{progressive_upper_bound, IncrementPolicy};
use nela::cluster::distributed_k_clustering;
use nela::{Params, System};

fn main() {
    let params = Params::scaled(20_000);
    let system = System::build(&params);

    // Form one k-cluster so the demo bounds realistic coordinates.
    let host = system
        .host_sequence(300, 5)
        .into_iter()
        .find(|&h| distributed_k_clustering(&system.wpg, h, params.k, &|_| false).is_ok())
        .expect("no servable host");
    let outcome = distributed_k_clustering(&system.wpg, host, params.k, &|_| false).unwrap();
    let xs: Vec<f64> = outcome
        .host_cluster
        .members
        .iter()
        .map(|&m| system.points[m as usize].x)
        .collect();
    let x0 = system.points[host as usize].x;
    let true_max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "cluster of {} users; upper-bounding x from the host anchor {x0:.6}",
        xs.len()
    );
    println!("true maximum (never revealed to anyone): {true_max:.6}\n");

    let span = params.uniform_span(xs.len());
    let mut policies: Vec<(&str, Box<dyn IncrementPolicy>)> = vec![
        ("linear", Box::new(LinearPolicy::new(span))),
        ("exponential", Box::new(ExponentialPolicy::new(span))),
        (
            "secure",
            Box::new(SecurePolicy::new(
                Uniform::new(span),
                AreaCost {
                    cr: params.cr * params.n_users as f64,
                },
                params.cb,
            )),
        ),
    ];

    println!(
        "{:>12} | {:>7} {:>9} {:>12} {:>12} {:>14}",
        "algorithm", "rounds", "messages", "bound", "slack", "mean leak width"
    );
    for (name, policy) in policies.iter_mut() {
        let run = progressive_upper_bound(&xs, x0, 0.0, policy.as_mut()).expect("valid cluster");
        let leak = leak_report(&run, 0.0);
        println!(
            "{name:>12} | {:>7} {:>9} {:>12.6} {:>12.2e} {:>14.2e}",
            run.rounds,
            run.messages,
            run.bound,
            run.slack(&xs),
            leak.mean_width,
        );
    }
    let opt = optimal_bound(&xs);
    println!(
        "{:>12} | {:>7} {:>9} {:>12.6} {:>12.2e} {:>14}",
        "optimal", 1, opt.messages, opt.bound, 0.0, "0 (full leak)"
    );

    println!(
        "\nLinear pays many rounds for a tight bound and leaks narrow\n\
         intervals; exponential is the opposite; secure bounding balances\n\
         the two by sizing each increment from the communication-cost model\n\
         (Equation 5)."
    );
}
